#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eclipse/app/graph_spec.hpp"
#include "eclipse/app/instance.hpp"
#include "eclipse/app/mode_set.hpp"

namespace eclipse::app {

/// PI-bus register map of a shell window (mirrors the layout in
/// shell.cpp): max_streams stream rows of kStreamRowWords 32-bit words,
/// then max_tasks task rows of kTaskRowWords words, then a kShellCtlWords
/// control block. Shared by the Configurator, the graph_dump tool and the
/// reconfiguration/fault tests.
namespace mmio {

inline constexpr std::uint32_t kStreamRowWords = 32;
inline constexpr std::uint32_t kTaskRowWords = 32;
inline constexpr std::uint32_t kShellCtlWords = 8;

/// Stream-row fields (word offsets). Fields past kRemoteRow are read-only
/// position/measurement registers, except kStreamStalled (write 0 to clear
/// a latched stall).
enum StreamField : std::uint32_t {
  kStreamValid = 0,
  kStreamTask = 1,
  kStreamPort = 2,
  kStreamIsProducer = 3,
  kStreamBase = 4,
  kStreamSize = 5,
  kStreamSpace = 6,
  kStreamRemoteShell = 7,
  kStreamRemoteRow = 8,
  kStreamPosLo = 9,
  kStreamPosHi = 10,
  kStreamGranted = 11,
  kStreamBytesLo = 12,
  kStreamBytesHi = 13,
  // Watchdog stall latch (DESIGN §9).
  kStreamStalled = 27,
  kStreamStallCycleLo = 28,
  kStreamStallCycleHi = 29,
};

/// Task-row fields (word offsets). Fields past kTaskInfo are read-only,
/// except kTaskFaulted (write 0 to clear the fault latch; the enable bit
/// must be restored separately — recovery is a deliberate two-step).
enum TaskField : std::uint32_t {
  kTaskValid = 0,
  kTaskEnabled = 1,
  kTaskBudget = 2,
  kTaskInfo = 3,
  kTaskBusyLo = 4,
  kTaskBusyHi = 5,
  kTaskBlocked = 6,  ///< write 0 to clear the blocked latch (row re-binding)
  // Fault register block (DESIGN §9).
  kTaskFaulted = 14,
  kTaskFaultCause = 15,
  kTaskFaultCycleLo = 16,
  kTaskFaultCycleHi = 17,
  kTaskFaultRow = 18,
  kTaskFaultCount = 19,
};

/// Shell control block fields (word offsets past the task table).
enum CtlField : std::uint32_t {
  kCtlLateSyncDrops = 0,   ///< sticky drop counter; writable (reset)
  kCtlWatchdogTimeout = 1, ///< write arms/disarms the watchdog (0 = off)
  kCtlWatchdogPeriod = 2,  ///< scan period; write BEFORE the timeout
  kCtlFaultsLatched = 3,   ///< read-only
  kCtlStallsLatched = 4,   ///< read-only
};

/// PI-bus address of stream-row register `field` of row `row` of `sh`.
inline sim::Addr streamReg(const shell::Shell& sh, std::uint32_t row, std::uint32_t field) {
  return EclipseInstance::mmioBase(sh) +
         (static_cast<sim::Addr>(row) * kStreamRowWords + field) * 4;
}

/// PI-bus address of task-row register `field` of slot `task` of `sh`.
inline sim::Addr taskReg(const shell::Shell& sh, sim::TaskId task, std::uint32_t field) {
  return EclipseInstance::mmioBase(sh) +
         (static_cast<sim::Addr>(sh.params().max_streams) * kStreamRowWords +
          static_cast<sim::Addr>(task) * kTaskRowWords + field) *
             4;
}

/// PI-bus address of shell control register `field` of `sh`.
inline sim::Addr ctlReg(const shell::Shell& sh, std::uint32_t field) {
  return EclipseInstance::mmioBase(sh) +
         (static_cast<sim::Addr>(sh.params().max_streams) * kStreamRowWords +
          static_cast<sim::Addr>(sh.params().max_tasks) * kTaskRowWords + field) *
             4;
}

}  // namespace mmio

/// One latched task fault as read back over the PI-bus (health()).
struct TaskFault {
  std::string task;          ///< task name from the spec
  std::string shell;         ///< hosting shell
  sim::TaskId id = 0;        ///< task slot
  std::uint32_t cause = 0;   ///< shell::FaultCause as raw register value
  sim::Cycle cycle = 0;      ///< cycle the fault latched
  std::int32_t row = -1;     ///< implicated stream row, -1 if none
  std::uint32_t count = 0;   ///< total faults seen on this slot
};

/// One latched stream stall as read back over the PI-bus (health()).
struct StreamStall {
  std::string stream;        ///< stream name from the spec
  bool producer_side = false;///< which row latched the stall
  sim::Cycle cycle = 0;      ///< cycle the watchdog latched it
};

/// Snapshot of the application's fault/stall registers.
struct AppHealth {
  std::vector<TaskFault> faults;
  std::vector<StreamStall> stalls;
  std::uint64_t late_sync_drops = 0;  ///< summed over the app's shells
  [[nodiscard]] bool healthy() const { return faults.empty() && stalls.empty(); }
};

/// A task as placed onto the instance: its spec plus the shell and task
/// slot the Configurator allocated for it.
struct AppTask {
  TaskSpec spec;
  shell::Shell* shell = nullptr;
  sim::TaskId id = 0;
};

/// A stream as placed onto the instance: its spec plus both programmed
/// stream-table rows and the SRAM FIFO region.
struct AppStream {
  StreamSpec spec;
  shell::Shell* producer_shell = nullptr;
  std::uint32_t producer_row = 0;
  shell::Shell* consumer_shell = nullptr;
  std::uint32_t consumer_row = 0;
  sim::Addr buffer_base = 0;
};

/// Runtime control handle for one configured application. All table state
/// changes go through the PI-bus, the same path the configuring CPU uses.
///
/// Lifecycle: pause()/resume() toggle the scheduler-enable bits; drain()
/// quiesces the graph (sources disabled, simulation sliced forward until
/// every stream is empty by space accounting); teardown() — only safe on a
/// quiesced or never-started graph — invalidates all rows and returns task
/// slots, stream rows and SRAM regions to the instance for reuse.
class AppHandle {
 public:
  AppHandle() = default;
  AppHandle(const AppHandle&) = delete;
  AppHandle& operator=(const AppHandle&) = delete;
  AppHandle(AppHandle&&) = default;
  AppHandle& operator=(AppHandle&&) = default;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] bool live() const { return inst_ != nullptr && !torn_down_; }
  [[nodiscard]] bool paused() const { return paused_; }

  [[nodiscard]] const std::vector<AppTask>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<AppStream>& streams() const { return streams_; }

  /// Task slot allocated for the named task; throws std::out_of_range.
  [[nodiscard]] sim::TaskId taskId(std::string_view task_name) const;
  /// Shell the named task was placed on; throws std::out_of_range.
  [[nodiscard]] shell::Shell& taskShell(std::string_view task_name) const;
  /// Placement of the named stream; throws std::out_of_range.
  [[nodiscard]] const AppStream& stream(std::string_view stream_name) const;

  /// Toggles one task's scheduler-enable bit over the PI-bus.
  void setTaskEnabled(std::string_view task_name, bool enabled);

  /// Disables every task of the application (state preserved).
  void pause();
  /// Re-enables every task whose spec wants it enabled.
  void resume();

  /// Reads the application's fault and stall registers back over the
  /// PI-bus: latched task faults, watchdog stream stalls, and the shells'
  /// sticky late-putspace drop counters.
  [[nodiscard]] AppHealth health() const;

  /// Registers a notification callback fired synchronously whenever a
  /// fault latches on one of the application's tasks (exception
  /// containment, watchdog hang, injected fault). The callback runs inside
  /// the simulation, so it may drive recovery over the PI-bus directly.
  void onFault(std::function<void(const TaskFault&)> fn);

  /// Recovery step 1: clears the named task's fault latch over the PI-bus.
  /// With `reenable`, also restores the scheduler-enable bit (step 2) so
  /// the task resumes from its retained table state.
  void clearFault(std::string_view task_name, bool reenable = true);

  /// Re-derives the named stream's space registers from the committed
  /// position counters (producer space = size - in_flight, consumer space
  /// = in_flight) and clears any stall latch on either row. Only sound
  /// while the graph is quiesced or stalled: in-flight putspace messages
  /// would be double-counted otherwise.
  void repairStream(std::string_view stream_name);

  /// True when every stream of the application is empty and settled by
  /// space accounting: producer row sees a fully free buffer and consumer
  /// row sees no readable data (read back over the PI-bus).
  [[nodiscard]] bool quiesced() const;

  /// Quiesces the application: disables source tasks, then advances the
  /// simulation in `slice`-cycle increments until quiesced() holds or no
  /// further progress is possible / `max_cycles` elapsed. Returns whether
  /// the graph quiesced. Other applications on the instance keep running
  /// during the drain.
  bool drain(sim::Cycle max_cycles = 2'000'000, sim::Cycle slice = 5'000);

  /// Live diff-based reconfiguration: computes the task/stream delta to
  /// `target` (diffGraphs), gates only the source tasks that can reach an
  /// affected stream, slice-runs until the affected subgraph is empty by
  /// space accounting (read back over the PI-bus), invalidates and frees
  /// only removed rows/buffers, programs only added ones (kept streams
  /// reuse their rows and SRAM in place, kept tasks their slots), then
  /// re-enables. `before_enable` runs after programming, before any enable
  /// write — the hook for coprocessor parameter setup that needs task ids.
  /// Field-only diffs (budgets/info) never pause the graph. Returns the
  /// measured transition cost; throws if the partial drain does not
  /// converge within `max_drain_cycles`.
  TransitionStats switchTo(const GraphSpec& target,
                           const std::function<void(AppHandle&)>& before_enable = {},
                           sim::Cycle max_drain_cycles = 2'000'000, sim::Cycle slice = 5'000);

  /// switchTo on a named mode of a validated ModeSet.
  TransitionStats switchMode(const ModeSet& modes, std::string_view mode_name,
                             const std::function<void(AppHandle&)>& before_enable = {});

  /// Name of the GraphSpec currently programmed (mode name after a
  /// switchTo/switchMode, the applied spec's name before the first switch).
  [[nodiscard]] const std::string& currentMode() const { return mode_; }

  /// Cost record of the most recent switchTo/switchMode.
  [[nodiscard]] const TransitionStats& lastTransition() const { return last_transition_; }

  /// Frees everything the application holds: task rows and stream rows are
  /// invalidated over the PI-bus (resetting them for reuse), software
  /// handlers unbound, task slots / stream SRAM / adopted DRAM returned to
  /// the instance allocators, and registered cleanups run. Idempotent.
  /// Only safe when the graph is quiesced (or was never run) — throws
  /// std::logic_error otherwise unless `force` is set (e.g. discarding a
  /// wedged graph after a fault).
  void teardown(bool force = false);
  [[nodiscard]] bool tornDown() const { return torn_down_; }

  /// Registers an off-chip region (e.g. an input bitstream or a frame
  /// store) to be freed on teardown.
  void adoptDram(sim::Addr addr, std::size_t bytes);

  /// Registers a callback run once at teardown (e.g. withdrawing a
  /// registerApp() slot for an application torn down before completion).
  void addCleanup(std::function<void()> fn);

 private:
  friend class Configurator;

  void requireLive() const;

  /// quiesced(), restricted to the given streams (partial-drain check).
  [[nodiscard]] bool streamsSettled(const std::vector<const AppStream*>& subset) const;

  /// Allocates SRAM and free rows for one stream and programs both table
  /// rows (fields first, valid last). Shared by apply() and switchTo().
  AppStream programStream(const StreamSpec& s);

  EclipseInstance* inst_ = nullptr;
  std::string name_;
  std::string mode_;
  std::vector<AppTask> tasks_;
  std::vector<AppStream> streams_;
  std::vector<std::pair<sim::Addr, std::size_t>> dram_regions_;
  std::vector<std::function<void()>> cleanups_;
  std::vector<std::pair<shell::Shell*, int>> fault_observers_;  ///< (shell, observer id)
  TransitionStats last_transition_{};
  bool torn_down_ = false;
  bool paused_ = false;
};

/// Programs a validated GraphSpec onto a live instance through the PI-bus:
/// allocates task slots and SRAM FIFOs, scans each shell's stream table
/// for free rows via valid-bit reads, writes configuration fields then the
/// valid bit (stream rows first, task enables last so no task can be
/// scheduled against a half-programmed graph), and returns the AppHandle.
class Configurator {
 public:
  explicit Configurator(EclipseInstance& inst) : inst_(inst) {}

  /// Validates and applies `spec`. `before_enable`, when given, runs after
  /// every slot/row/buffer is allocated and programmed but before any task
  /// row is made valid+enabled — the place for coprocessor-specific
  /// parameter setup (e.g. VLD bitstream address) that needs task ids.
  AppHandle apply(const GraphSpec& spec,
                  const std::function<void(AppHandle&)>& before_enable = {});

 private:
  EclipseInstance& inst_;
};

}  // namespace eclipse::app
