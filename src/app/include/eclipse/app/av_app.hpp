#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "eclipse/app/audio_app.hpp"
#include "eclipse/app/configurator.hpp"
#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/instance.hpp"

namespace eclipse::app {

/// Which multiplex stream ids carry which media.
struct AvLayout {
  int video_stream_id = 0;
  int audio_stream_id = 1;
};

/// Complete audio/video playback application: the full software mix of
/// Section 6 ("audio decoding ... and de-multiplexing are executed in
/// software on the media processor") around the hardware video pipeline.
///
/// A multiplexed transport stream lives in off-chip memory. A software
/// demux task on the DSP-CPU walks its packets, stages the video
/// elementary stream into an off-chip staging area and feeds the audio
/// elementary stream onward. Once the video stream is fully staged, the
/// demux task *enables the VLD task through the task table* — run-time
/// application control exactly as the CPU would do it.
class AvPlaybackApp {
 public:
  AvPlaybackApp(EclipseInstance& inst, std::vector<std::uint8_t> transport_stream,
                const AvLayout& layout = {});

  [[nodiscard]] bool done() const;
  [[nodiscard]] std::vector<media::Frame> frames() const { return video_->frames(); }
  [[nodiscard]] std::vector<std::int16_t> pcm() const { return audio_->pcm(); }

  [[nodiscard]] const DecodeApp& video() const { return *video_; }
  [[nodiscard]] const AudioDecodeApp& audio() const { return *audio_; }
  [[nodiscard]] AudioDecodeApp& audio() { return *audio_; }

  /// Detaches the audio decoder subgraph live (bypass mode: the feeder
  /// streams coded blocks straight to the sink). The video pipeline and
  /// the demux keep running through the transition.
  TransitionStats detachAudioDecode();
  /// Re-attaches the audio decoder subgraph (play mode).
  TransitionStats attachAudioDecode();

  /// Control handle for the demux task's one-task graph.
  [[nodiscard]] AppHandle& demuxHandle() { return demux_handle_; }
  /// Tears down the demux graph and both media applications.
  void teardown();

  /// Transport packets the demux task processed (timing statistics).
  [[nodiscard]] std::uint64_t packetsDemuxed() const;

 private:
  struct DemuxState;

  EclipseInstance& inst_;
  std::unique_ptr<DecodeApp> video_;
  std::unique_ptr<AudioDecodeApp> audio_;
  std::shared_ptr<DemuxState> demux_;
  AppHandle demux_handle_;
  sim::TaskId t_demux_ = 0;
};

}  // namespace eclipse::app
