#pragma once

#include <cstdint>
#include <vector>

#include "eclipse/kpn/graph.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::app {

/// Functional Kahn-Process-Network decoder — the *application model* level
/// of the paper's refinement trajectory (Section 4: "Kahn application
/// models are gradually refined into task-level code").
///
/// The network has exactly the Figure-2 shape used by the Eclipse mapping:
///
///   vld --coefs--> rlsq --blocks--> idct --residual--> mc --pixels--> sink
///     \---------------------headers/motion-vectors-----^
///
/// Tasks exchange the same serialised packets as the timed coprocessors,
/// and every stage calls the same media::stages functions, so the KPN
/// output is bit-exact with both the golden decoder and the cycle-level
/// Eclipse run — a direct, testable statement of Kahn determinism.
class KpnDecoder {
 public:
  /// Buffer capacity per stream edge in bytes.
  explicit KpnDecoder(std::vector<std::uint8_t> bitstream, std::size_t fifo_bytes = 16384);

  /// Runs the network to completion and returns frames in display order.
  std::vector<media::Frame> run();

  /// The underlying graph (inspect structure, edge statistics).
  [[nodiscard]] kpn::Graph& graph() { return graph_; }

  /// Edge ids for measurement (maxFill etc. after run()).
  [[nodiscard]] int coefEdge() const { return e_coef_; }
  [[nodiscard]] int hdrEdge() const { return e_hdr_; }
  [[nodiscard]] int blocksEdge() const { return e_blocks_; }
  [[nodiscard]] int resEdge() const { return e_res_; }
  [[nodiscard]] int pixEdge() const { return e_pix_; }

 private:
  kpn::Graph graph_;
  std::vector<media::Frame> result_;
  int e_coef_ = -1, e_hdr_ = -1, e_blocks_ = -1, e_res_ = -1, e_pix_ = -1;
};

/// Functional Kahn-Process-Network encoder — the application-model level
/// of the encoding graph that EncodeApp maps onto the coprocessors:
///
///   src -> me -> fdct -> qrle -> vle -> bitstream
///                           \-> deq -> idct -> recon
///   recon -> src: frame-done tokens gate dependent pictures.
///
/// The reference frame store is shared state between the me and recon
/// tasks (the functional analogue of the off-chip frame store, which in
/// Eclipse also lives outside the stream semantics); the token protocol
/// serialises accesses. With matching search parameters the produced
/// stream is bit-identical to both media::Encoder and app::EncodeApp.
class KpnEncoder {
 public:
  KpnEncoder(std::vector<media::Frame> frames, const media::CodecParams& params,
             std::size_t fifo_bytes = 16384);

  /// Runs the network to completion; returns the elementary stream.
  std::vector<std::uint8_t> run();

  [[nodiscard]] kpn::Graph& graph() { return graph_; }

  /// Shared reference frame store (defined in the implementation).
  struct RefStore;

 private:
  kpn::Graph graph_;
  std::vector<std::uint8_t> result_;
};

}  // namespace eclipse::app
