#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eclipse/app/configurator.hpp"
#include "eclipse/app/instance.hpp"
#include "eclipse/app/mode_set.hpp"
#include "eclipse/media/types.hpp"

namespace eclipse::app {

/// Stream-buffer sizes of the decode graph (bytes, cache-line multiples).
/// Defaults fit two simultaneous decode applications in a 32 kB SRAM.
struct DecodeAppConfig {
  std::uint32_t coef_buffer = 4096;    ///< VLD -> RLSQ
  std::uint32_t hdr_buffer = 1024;     ///< VLD -> MC (headers / motion vectors)
  std::uint32_t blocks_buffer = 2048;  ///< RLSQ -> DCT
  std::uint32_t res_buffer = 2048;     ///< DCT -> MC (residuals)
  std::uint32_t pix_buffer = 2048;     ///< MC -> output
  std::uint32_t budget_cycles = 2000;  ///< scheduler budget for every task
  /// When false, the VLD task starts disabled; a controller (e.g. a demux
  /// task that must stage the elementary stream first) enables it later
  /// through the task table. Run-time application control, Section 3.
  bool vld_enabled = true;
};

/// One MPEG decoding application on an Eclipse instance — the Figure-2
/// process network mapped as in Figure 3/8:
///
///   bitstream (off-chip) -> VLD -> RLSQ -> DCT(inverse) -> MC -> sink
///                              \________________________--^
///                               (headers / motion vectors)
///
/// The graph is declared as a GraphSpec and programmed onto the instance
/// by the Configurator over the PI-bus; this class is a thin adapter that
/// owns the resulting AppHandle. Several DecodeApps can run on the same
/// instance simultaneously; each adds one task to every coprocessor's task
/// table (time-shared hardware).
class DecodeApp {
 public:
  /// A named decode mode: the GraphSpec carries the mode name, the config
  /// its buffer sizes and budgets.
  using Mode = std::pair<std::string, DecodeAppConfig>;

  DecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> bitstream,
            const DecodeAppConfig& cfg = {});

  /// Multi-mode constructor: validates the whole mode family up front
  /// (ModeSet::validate) and applies the first mode. Later modes are
  /// reachable live via switchMode()/switchSegment().
  DecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> bitstream,
            std::vector<Mode> modes);

  /// The GraphSpec the constructor applies (exposed for inspection,
  /// validation tests and tooling). `sink_shell` is the name of the frame
  /// sink's shell; `name` becomes the graph/mode name.
  static GraphSpec spec(const DecodeAppConfig& cfg, const std::string& sink_shell,
                        const std::string& name = "decode");

  /// The decode mode family as a validated ModeSet (one spec per entry).
  static ModeSet modeSet(const std::vector<Mode>& modes, const std::string& sink_shell);

  /// Live in-clip transition to another mode of the family (diff-based,
  /// AppHandle::switchTo). Field-only diffs — budget/priority modes over
  /// identical topology, e.g. a degraded low-power mode — complete without
  /// draining or advancing the simulation, so this is safe to call from
  /// inside a fault callback. Modes with different buffer sizes re-bind
  /// the affected streams (partial drain, advances the simulation).
  TransitionStats switchMode(std::string_view mode_name);

  /// Segment boundary: after the current bitstream finished (done()),
  /// re-arms the sink, switches to `mode_name` and points the VLD at the
  /// next segment's bitstream — SD↔HD adaptive-bitrate decode without
  /// tearing the application down. Finished frames of the previous segment
  /// are archived (segmentFrames). Throws std::logic_error unless done().
  TransitionStats switchSegment(std::string_view mode_name, std::vector<std::uint8_t> bitstream);

  /// Active mode name ("decode" for the single-mode constructor).
  [[nodiscard]] const std::string& currentMode() const { return handle_.currentMode(); }
  [[nodiscard]] const ModeSet& modes() const { return modes_; }

  [[nodiscard]] bool done() const;
  [[nodiscard]] std::vector<media::Frame> frames() const;
  [[nodiscard]] std::uint64_t macroblocksDecoded() const;

  /// Installs the graceful-degradation policy (DESIGN §9): when a fault
  /// latches on one of the application's tasks, drop the damaged picture,
  /// flush in-flight stream data up to an in-band Resync marker, restart
  /// the VLD at the next I-frame and keep decoding. A fault on the VLD
  /// itself (unparseable source) aborts the stream cleanly instead, so the
  /// clip still completes with whatever was decoded.
  void enableRecovery();

  /// Fault recoveries performed so far (enableRecovery() policy runs).
  [[nodiscard]] std::uint64_t recoveries() const { return recoveries_; }

  /// enableRecovery(), plus: the first recovered fault also drops the
  /// application into `degraded_mode` (a mode of the family, typically a
  /// reduced-budget low-power graph) via a live field-only switch — the
  /// PR-4 fault path feeding the mode-set machinery. Requires the
  /// multi-mode constructor and a field-only diff to the degraded mode.
  void enableDegradedFallback(std::string degraded_mode);

  /// True once the degraded fallback fired.
  [[nodiscard]] bool degraded() const { return degraded_; }

  /// Frames the sink abandoned mid-assembly during recovery.
  [[nodiscard]] std::uint64_t framesDropped() const;

  /// Segments archived by switchSegment() so far.
  [[nodiscard]] std::size_t segmentsCompleted() const;
  /// Display-order frames of archived segment `i`.
  [[nodiscard]] std::vector<media::Frame> segmentFrames(std::size_t i) const;

  /// Runtime control (pause/resume/drain/teardown) for this application.
  [[nodiscard]] AppHandle& handle() { return handle_; }
  [[nodiscard]] const AppHandle& handle() const { return handle_; }
  /// Frees every resource the application holds (see AppHandle::teardown).
  void teardown() { handle_.teardown(); }

  // Stream handles for measurement (Figures 9/10: buffer filling of the
  // RLSQ, DCT and MC input streams).
  [[nodiscard]] const EclipseInstance::StreamHandle& coefStream() const { return s_coef_; }
  [[nodiscard]] const EclipseInstance::StreamHandle& hdrStream() const { return s_hdr_; }
  [[nodiscard]] const EclipseInstance::StreamHandle& blocksStream() const { return s_blocks_; }
  [[nodiscard]] const EclipseInstance::StreamHandle& resStream() const { return s_res_; }
  [[nodiscard]] const EclipseInstance::StreamHandle& pixStream() const { return s_pix_; }

  [[nodiscard]] sim::TaskId vldTask() const { return t_vld_; }
  [[nodiscard]] sim::TaskId rlsqTask() const { return t_rlsq_; }
  [[nodiscard]] sim::TaskId dctTask() const { return t_dct_; }
  [[nodiscard]] sim::TaskId mcTask() const { return t_mc_; }

 private:
  /// (Re)configures the VLD and MC task parameters for a bitstream whose
  /// sequence header is already parsed; allocates and adopts the off-chip
  /// regions. Shared by the constructors and switchSegment().
  std::function<void(AppHandle&)> stageBitstream(std::vector<std::uint8_t> bitstream);
  void cacheHandles();

  EclipseInstance& inst_;
  coproc::FrameSink* sink_ = nullptr;
  AppHandle handle_;
  ModeSet modes_{"decode-modes"};
  std::string degraded_mode_;
  sim::TaskId t_vld_ = 0, t_rlsq_ = 0, t_dct_ = 0, t_mc_ = 0;
  EclipseInstance::StreamHandle s_coef_{}, s_hdr_{}, s_blocks_{}, s_res_{}, s_pix_{};
  std::uint64_t recoveries_ = 0;
  bool degraded_ = false;
};

}  // namespace eclipse::app
