#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eclipse/sim/shard.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::app {

class GraphSpec;

/// User-facing sharding request for an instance (DESIGN §13).
///
/// The partitioner turns this into a ShardAssignment. The default rule is
/// the *fusion rule*: shells that share a zero-lookahead resource — the
/// memory hub (shared SRAM read/write buses and the system bus), whose FIFO
/// grant order couples clients at same-cycle granularity — are fused onto
/// one lane. On the Figure-8 instance every shell streams through the
/// shared SRAM, so the whole instance fuses to the hub lane and a sharded
/// run executes in exactly the serial event order: bit-identity with the
/// serial oracle holds *structurally*, for any shard count and any thread
/// interleaving. Lanes beyond the fused group still host genuinely
/// independent work (and farm jobs pay nothing for them: the engine never
/// wakes a thread for an empty lane).
struct ShardPlan {
  std::uint32_t shards = 1;

  /// Hand override: shell name -> lane. Only meaningful with
  /// split_memory_hub (the fusion rule is not negotiable — a pinned shell
  /// that touches a shared bus from a foreign lane throws at run time).
  std::map<std::string, sim::ShardId> pin;

  /// Escape hatch for bus-silent scenarios (kernel/fault tests, synthetic
  /// workloads whose shells never issue SRAM/DRAM transfers): distributes
  /// shells across lanes by load instead of fusing. The memory hub stays
  /// homed on lane 0 and any bus transfer from another lane throws.
  bool split_memory_hub = false;

  /// Optional per-shell load weights (e.g. from graphLoadHints); shells
  /// absent from the map weigh 1.
  std::map<std::string, std::uint32_t> load_hint;
};

/// Resolved shard assignment for an instance.
struct ShardAssignment {
  std::uint32_t shards = 1;
  sim::ShardId hub = 0;  ///< lane owning the memory hub (SRAM/DRAM buses)
  std::map<std::string, sim::ShardId> shell_shard;
  /// Conservative lookahead between lanes (the modeled putspace delivery
  /// latency — the only cross-shard transport). 0 when at most one lane is
  /// populated: no conservative windows are needed at all.
  sim::Cycle lookahead = 0;
  std::string rule;  ///< human-readable rationale (graph_dump, logs)

  [[nodiscard]] sim::ShardId laneOf(const std::string& shell) const {
    auto it = shell_shard.find(shell);
    return it == shell_shard.end() ? hub : it->second;
  }
  [[nodiscard]] std::uint32_t lanesUsed() const;
};

/// Computes the shard assignment for the named shells under `plan`.
/// `message_latency` is the modeled putspace delivery latency — the
/// lookahead of every cross-lane edge. Deterministic: identical inputs
/// produce identical assignments (load ties break by shell name).
ShardAssignment computePartition(const std::vector<std::string>& shells, const ShardPlan& plan,
                                 sim::Cycle message_latency);

/// Derives per-shell load weights from an application graph: each task
/// weighs its scheduling presence, each stream endpoint its transport
/// traffic. Feed the result into ShardPlan::load_hint.
std::map<std::string, std::uint32_t> graphLoadHints(const GraphSpec& spec);

/// GraphSpec-driven convenience: a plan for `shards` lanes with load hints
/// merged from every graph that will run on the instance.
ShardPlan planForGraphs(std::uint32_t shards, const std::vector<const GraphSpec*>& graphs);

}  // namespace eclipse::app
