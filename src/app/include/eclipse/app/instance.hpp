#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "eclipse/coproc/dct_coproc.hpp"
#include "eclipse/coproc/mc.hpp"
#include "eclipse/coproc/rlsq.hpp"
#include "eclipse/coproc/sinks.hpp"
#include "eclipse/coproc/soft_cpu.hpp"
#include "eclipse/coproc/vld.hpp"
#include "eclipse/mem/message_network.hpp"
#include "eclipse/mem/pi_bus.hpp"
#include "eclipse/mem/sram.hpp"
#include "eclipse/shell/shell.hpp"
#include "eclipse/sim/config.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::app {

/// Parameters of one Eclipse instance — the template parameters of
/// Section 3 (memory size, bus width, caches, coprocessor timing, ...).
/// Defaults correspond to the Figure-8 MPEG instance.
struct InstanceParams {
  mem::SramParams sram{};
  mem::DramParams dram{};
  sim::Cycle message_latency = 2;

  // Shell template parameters (applied to every shell; per-shell overrides
  // can be made before start()).
  std::uint32_t cache_line_bytes = 64;
  std::uint32_t cache_lines_per_port = 2;
  bool prefetch = true;
  sim::Cycle sync_latency = 2;
  sim::Cycle gettask_latency = 2;
  sim::Cycle io_latency = 1;
  std::uint32_t port_width_bytes = 16;
  std::uint32_t max_tasks = 8;
  std::uint32_t max_streams = 24;
  sim::Cycle profiler_period = 0;
  bool best_guess = true;

  coproc::VldParams vld{};
  coproc::RlsqParams rlsq{};
  coproc::DctParams dct{};
  coproc::McParams mc{};

  /// Loads overrides from a setup file (Section 7 design-space
  /// exploration); unknown keys are ignored by this loader.
  static InstanceParams fromConfig(const sim::Config& cfg);
};

/// One Eclipse subsystem instance: the coprocessors of Figure 8 behind
/// their shells, the shared SRAM with its split read/write buses, the
/// off-chip memory on the system bus, the inter-shell message network, and
/// the PI-bus with every shell's tables mapped.
///
/// Applications (DecodeApp, EncodeApp) are configured onto a running
/// instance at run time, exactly like the CPU programming the stream and
/// task tables of a real subsystem.
class EclipseInstance {
 public:
  explicit EclipseInstance(const InstanceParams& params = {});

  /// Tears down the simulation processes before the memory/bus models they
  /// reference (members are destroyed in reverse declaration order, which
  /// would otherwise free the models while suspended coroutine frames
  /// still hold guards into them).
  ~EclipseInstance() { sim_.destroyProcesses(); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] mem::SharedSram& sram() { return *sram_; }
  [[nodiscard]] mem::OffChipMemory& dram() { return *dram_; }
  [[nodiscard]] mem::MessageNetwork& network() { return *network_; }
  [[nodiscard]] mem::PiBus& piBus() { return pi_bus_; }
  [[nodiscard]] const InstanceParams& params() const { return params_; }

  [[nodiscard]] coproc::VldCoproc& vld() { return *vld_; }
  [[nodiscard]] coproc::RlsqCoproc& rlsq() { return *rlsq_; }
  [[nodiscard]] coproc::DctCoproc& dct() { return *dct_; }
  [[nodiscard]] coproc::McCoproc& mc() { return *mc_; }
  [[nodiscard]] coproc::SoftCpu& cpu() { return *cpu_; }

  [[nodiscard]] shell::Shell& vldShell() { return *shells_[0]; }
  [[nodiscard]] shell::Shell& rlsqShell() { return *shells_[1]; }
  [[nodiscard]] shell::Shell& dctShell() { return *shells_[2]; }
  [[nodiscard]] shell::Shell& mcShell() { return *shells_[3]; }
  [[nodiscard]] shell::Shell& cpuShell() { return *shells_[4]; }
  [[nodiscard]] std::vector<std::unique_ptr<shell::Shell>>& shells() { return shells_; }

  /// Creates a frame sink (display writer) with its own shell.
  coproc::FrameSink& createFrameSink(std::function<void()> on_done);
  /// Creates a byte sink (e.g. for an encoder's output bitstream).
  coproc::ByteSink& createByteSink(std::function<void()> on_done);

  /// Allocates a stream buffer in on-chip SRAM (cache-line aligned).
  sim::Addr allocSram(std::uint32_t bytes);
  /// Allocates a region in off-chip memory.
  sim::Addr allocDram(std::size_t bytes);

  /// Allocates the next free task slot on a shell.
  sim::TaskId allocTask(shell::Shell& sh);

  /// One end of a stream.
  struct Endpoint {
    shell::Shell* shell;
    sim::TaskId task;
    sim::PortId port;
  };

  /// Handle to a configured stream (for measurement access).
  struct StreamHandle {
    shell::Shell* producer_shell = nullptr;
    std::uint32_t producer_row = 0;
    shell::Shell* consumer_shell = nullptr;
    std::uint32_t consumer_row = 0;
    sim::Addr buffer_base = 0;
    std::uint32_t buffer_bytes = 0;
  };

  /// Allocates a FIFO in SRAM and programs both shells' stream tables.
  StreamHandle connectStream(const Endpoint& producer, const Endpoint& consumer,
                             std::uint32_t buffer_bytes);

  /// Starts every coprocessor control loop (and profilers if enabled).
  /// Idempotent per coprocessor; sinks created later start on creation.
  void start();

  /// Registers an application completion slot; returns a callback that the
  /// application fires when done. The simulation stops when every
  /// registered application has completed.
  std::function<void()> registerApp();

  /// Runs the simulation until all registered applications complete, the
  /// event queue drains, or `until` is reached.
  sim::Cycle run(sim::Cycle until = sim::Simulator::kForever);

  [[nodiscard]] int pendingApps() const { return pending_apps_; }

 private:
  shell::Shell& makeShell(const std::string& name);

  InstanceParams params_;
  sim::Simulator sim_;
  std::unique_ptr<mem::SharedSram> sram_;
  std::unique_ptr<mem::OffChipMemory> dram_;
  std::unique_ptr<mem::MessageNetwork> network_;
  mem::PiBus pi_bus_;

  std::vector<std::unique_ptr<shell::Shell>> shells_;
  std::vector<std::unique_ptr<coproc::Coprocessor>> extra_coprocs_;
  std::unique_ptr<coproc::VldCoproc> vld_;
  std::unique_ptr<coproc::RlsqCoproc> rlsq_;
  std::unique_ptr<coproc::DctCoproc> dct_;
  std::unique_ptr<coproc::McCoproc> mc_;
  std::unique_ptr<coproc::SoftCpu> cpu_;

  sim::Addr sram_next_ = 0;
  sim::Addr dram_next_ = 0;
  std::vector<std::uint32_t> next_task_;  // per shell id
  std::uint32_t next_shell_id_ = 0;
  int pending_apps_ = 0;
  bool started_ = false;
};

}  // namespace eclipse::app
