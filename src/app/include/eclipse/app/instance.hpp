#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "eclipse/coproc/dct_coproc.hpp"
#include "eclipse/coproc/mc.hpp"
#include "eclipse/coproc/rlsq.hpp"
#include "eclipse/coproc/sinks.hpp"
#include "eclipse/coproc/soft_cpu.hpp"
#include "eclipse/coproc/vld.hpp"
#include "eclipse/app/partition.hpp"
#include "eclipse/mem/message_network.hpp"
#include "eclipse/mem/pi_bus.hpp"
#include "eclipse/mem/sram.hpp"
#include "eclipse/shell/shell.hpp"
#include "eclipse/sim/config.hpp"
#include "eclipse/sim/fault.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::app {

/// Why the instance stopped making progress (classifyQuiescence()).
enum class Quiescence {
  Running,     ///< at least one task is runnable — not quiescent at all
  Done,        ///< every valid task is disabled or finished: clean drain
  Starved,     ///< blocked chains all end at a disabled/faulted task
  Deadlocked,  ///< a cycle of tasks each waiting on the next
};

[[nodiscard]] constexpr const char* quiescenceName(Quiescence q) {
  switch (q) {
    case Quiescence::Running: return "running";
    case Quiescence::Done: return "done";
    case Quiescence::Starved: return "starved";
    case Quiescence::Deadlocked: return "deadlocked";
  }
  return "?";
}

/// Parameters of one Eclipse instance — the template parameters of
/// Section 3 (memory size, bus width, caches, coprocessor timing, ...).
/// Defaults correspond to the Figure-8 MPEG instance.
struct InstanceParams {
  mem::SramParams sram{};
  mem::DramParams dram{};
  sim::Cycle message_latency = 2;

  // Shell template parameters (applied to every shell; per-shell overrides
  // can be made before start()).
  std::uint32_t cache_line_bytes = 64;
  std::uint32_t cache_lines_per_port = 2;
  bool prefetch = true;
  sim::Cycle sync_latency = 2;
  sim::Cycle gettask_latency = 2;
  sim::Cycle io_latency = 1;
  std::uint32_t port_width_bytes = 16;
  std::uint32_t max_tasks = 8;
  std::uint32_t max_streams = 24;
  sim::Cycle profiler_period = 0;
  bool best_guess = true;

  coproc::VldParams vld{};
  coproc::RlsqParams rlsq{};
  coproc::DctParams dct{};
  coproc::McParams mc{};

  /// Loads overrides from a setup file (Section 7 design-space
  /// exploration); unknown keys are ignored by this loader.
  static InstanceParams fromConfig(const sim::Config& cfg);
};

/// One Eclipse subsystem instance: the coprocessors of Figure 8 behind
/// their shells, the shared SRAM with its split read/write buses, the
/// off-chip memory on the system bus, the inter-shell message network, and
/// the PI-bus with every shell's tables mapped.
///
/// Applications are configured onto a running instance at run time through
/// the GraphSpec/Configurator control plane (see graph_spec.hpp), exactly
/// like the CPU programming the stream and task tables of a real
/// subsystem. Shells are addressed by *name* ("vld", "dct", "dsp-cpu",
/// ...), never by construction position.
class EclipseInstance {
 public:
  /// Every shell's register window is mapped on the PI-bus at
  /// id * kMmioStride (the window itself is far smaller).
  static constexpr sim::Addr kMmioStride = 0x10000;

  /// The five Figure-8 modules built by the constructor; shells beyond
  /// this are per-application sinks appended at run time.
  static constexpr std::uint32_t kFixedShells = 5;

  explicit EclipseInstance(const InstanceParams& params = {});

  /// Tears down the simulation processes before the memory/bus models they
  /// reference (members are destroyed in reverse declaration order, which
  /// would otherwise free the models while suspended coroutine frames
  /// still hold guards into them).
  ~EclipseInstance() { sim_.destroyProcesses(); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] mem::SharedSram& sram() { return *sram_; }
  [[nodiscard]] mem::OffChipMemory& dram() { return *dram_; }
  [[nodiscard]] mem::MessageNetwork& network() { return *network_; }
  [[nodiscard]] mem::PiBus& piBus() { return pi_bus_; }
  [[nodiscard]] const InstanceParams& params() const { return params_; }

  [[nodiscard]] coproc::VldCoproc& vld() { return *vld_; }
  [[nodiscard]] coproc::RlsqCoproc& rlsq() { return *rlsq_; }
  [[nodiscard]] coproc::DctCoproc& dct() { return *dct_; }
  [[nodiscard]] coproc::McCoproc& mc() { return *mc_; }
  [[nodiscard]] coproc::SoftCpu& cpu() { return *cpu_; }

  /// Name-based shell lookup — the way applications (and the GraphSpec
  /// configurator) address computation modules. Throws std::out_of_range
  /// with the list of known names when `name` is absent.
  [[nodiscard]] shell::Shell& shell(std::string_view name);
  /// Like shell(), but returns nullptr instead of throwing.
  [[nodiscard]] shell::Shell* findShell(std::string_view name);

  // Convenience aliases for the five Figure-8 modules (thin wrappers over
  // the named lookup; no positional indexing).
  [[nodiscard]] shell::Shell& vldShell() { return shell("vld"); }
  [[nodiscard]] shell::Shell& rlsqShell() { return shell("rlsq"); }
  [[nodiscard]] shell::Shell& dctShell() { return shell("dct"); }
  [[nodiscard]] shell::Shell& mcShell() { return shell("mc"); }
  [[nodiscard]] shell::Shell& cpuShell() { return shell("dsp-cpu"); }
  [[nodiscard]] std::vector<std::unique_ptr<shell::Shell>>& shells() { return shells_; }

  /// PI-bus base address of a shell's register window.
  [[nodiscard]] static sim::Addr mmioBase(const shell::Shell& sh) {
    return static_cast<sim::Addr>(sh.id()) * kMmioStride;
  }

  /// The software coprocessor fronted by `sh`, or nullptr when `sh` fronts
  /// a hardware module (used by the configurator to bind software steps).
  [[nodiscard]] coproc::SoftCpu* softCpuAt(const shell::Shell& sh);

  /// Creates a frame sink (display writer) with its own shell.
  coproc::FrameSink& createFrameSink(std::function<void()> on_done);
  /// Creates a byte sink (e.g. for an encoder's output bitstream).
  coproc::ByteSink& createByteSink(std::function<void()> on_done);

  /// Allocates a stream buffer in on-chip SRAM (cache-line aligned,
  /// first-fit over the free list). Throws std::runtime_error on
  /// exhaustion.
  sim::Addr allocSram(std::uint32_t bytes);
  /// Returns an SRAM region to the free list (coalescing with neighbours)
  /// so a torn-down application's buffers can be reused.
  void freeSram(sim::Addr addr, std::uint32_t bytes);
  /// Bytes currently allocatable in SRAM (largest-hole not guaranteed).
  [[nodiscard]] std::size_t sramBytesFree() const;

  /// Allocates a region in off-chip memory (first-fit free list).
  sim::Addr allocDram(std::size_t bytes);
  void freeDram(sim::Addr addr, std::size_t bytes);
  [[nodiscard]] std::size_t dramBytesFree() const;

  /// Allocates the lowest free task slot on a shell.
  sim::TaskId allocTask(shell::Shell& sh);
  /// Releases a task slot for reuse by a later application.
  void freeTask(shell::Shell& sh, sim::TaskId task);
  /// Number of unallocated task slots on a shell (capacity check).
  [[nodiscard]] std::uint32_t freeTaskSlots(const shell::Shell& sh) const;

  /// One end of a stream.
  struct Endpoint {
    shell::Shell* shell;
    sim::TaskId task;
    sim::PortId port;
  };

  /// Handle to a configured stream (for measurement access).
  struct StreamHandle {
    shell::Shell* producer_shell = nullptr;
    std::uint32_t producer_row = 0;
    shell::Shell* consumer_shell = nullptr;
    std::uint32_t consumer_row = 0;
    sim::Addr buffer_base = 0;
    std::uint32_t buffer_bytes = 0;
  };

  /// Allocates a FIFO in SRAM and programs both shells' stream tables
  /// directly (legacy/testing path; applications go through the
  /// Configurator, which programs the same tables over the PI-bus).
  StreamHandle connectStream(const Endpoint& producer, const Endpoint& consumer,
                             std::uint32_t buffer_bytes);

  /// Partitions the instance across `plan.shards` simulation lanes
  /// (DESIGN §13). Must precede start() — every process spawns onto its
  /// shell's lane. The default rule fuses all bus-coupled shells onto the
  /// hub lane (bit-identity with the serial oracle is structural); the
  /// split_memory_hub escape distributes shells for bus-silent scenarios.
  /// Returns the resolved assignment. Idempotent for an identical shard
  /// count (farm instance reuse re-applies tags without resetting time).
  const ShardAssignment& applyShardPlan(const ShardPlan& plan);
  [[nodiscard]] const ShardAssignment& shardAssignment() const { return shard_assignment_; }
  [[nodiscard]] bool shardPlanned() const { return shard_planned_; }

  /// Starts every coprocessor control loop (and profilers if enabled).
  /// Idempotent per coprocessor; sinks created later start on creation.
  void start();

  /// Registers an application completion slot; returns a callback that the
  /// application fires when done. The simulation stops when every
  /// registered application has completed.
  std::function<void()> registerApp();

  /// Withdraws one registered-but-unfinished application (used when an
  /// application is torn down before its sink fired completion).
  void deregisterApp();

  /// Runs the simulation until all registered applications complete, the
  /// event queue drains, or `until` is reached.
  sim::Cycle run(sim::Cycle until = sim::Simulator::kForever);

  [[nodiscard]] int pendingApps() const { return pending_apps_; }

  // --- Fault injection and health (DESIGN §9) ---------------------------

  /// Arms a fault plan: query-style faults (drop/delay putspace, task
  /// hang, payload corruption) are installed into the instance's
  /// FaultInjector and checked by the shells/network at the matching
  /// touch points; state-mutating faults (SRAM/DRAM bit flips) are
  /// scheduled as one-shot simulation events at their trigger cycle.
  /// Callable repeatedly; each call replaces the previous plan.
  void armFaults(const sim::FaultPlan& plan);

  /// The instance's fault injector (trigger log lives here).
  [[nodiscard]] sim::FaultInjector& faults() { return injector_; }

  /// Arms every shell's progress watchdog over the PI-bus (control-block
  /// writes, period first). `timeout` of 0 disarms.
  void armWatchdogs(sim::Cycle timeout, sim::Cycle period = 256);

  /// Returns the instance to its just-constructed state so the next
  /// application batch behaves bit-identically to one launched on a cold
  /// instance (farm worker reuse, DESIGN §10). Requires every application
  /// to be torn down and the event queue to be quiescent; returns false
  /// (and changes nothing) otherwise. On success: all coroutine processes
  /// are destroyed, per-application sink shells are removed (PI-bus and
  /// message-network windows released, shell ids rolled back), every
  /// fixed shell's scheduler and every coprocessor's per-task state is
  /// reset, the fault injector is disarmed, and the next run() re-spawns
  /// the control loops in the canonical cold-start order.
  bool recycle();

  /// Classifies the current stop state by walking the blocked-on graph:
  /// each blocked task points (via its blocked stream row's remote shell/
  /// row) at the task it waits on. A cycle is a deadlock; a chain ending
  /// at a disabled or faulted task is starvation; no enabled unfinished
  /// task at all is a clean drain; anything runnable means still running.
  [[nodiscard]] Quiescence classifyQuiescence();

 private:
  /// A free region of a linear memory (free lists kept sorted by address
  /// and coalesced on free).
  struct Region {
    sim::Addr addr;
    std::uint64_t bytes;
  };

  static sim::Addr allocRegion(std::vector<Region>& free_list, std::uint64_t bytes,
                               const char* what);
  static void freeRegion(std::vector<Region>& free_list, sim::Addr addr, std::uint64_t bytes,
                         const char* what);
  static std::size_t regionBytes(const std::vector<Region>& free_list);

  shell::Shell& makeShell(const std::string& name);

  InstanceParams params_;
  sim::Simulator sim_;
  std::unique_ptr<mem::SharedSram> sram_;
  std::unique_ptr<mem::OffChipMemory> dram_;
  std::unique_ptr<mem::MessageNetwork> network_;
  mem::PiBus pi_bus_;

  std::vector<std::unique_ptr<shell::Shell>> shells_;
  std::vector<std::unique_ptr<coproc::Coprocessor>> extra_coprocs_;
  std::unique_ptr<coproc::VldCoproc> vld_;
  std::unique_ptr<coproc::RlsqCoproc> rlsq_;
  std::unique_ptr<coproc::DctCoproc> dct_;
  std::unique_ptr<coproc::McCoproc> mc_;
  std::unique_ptr<coproc::SoftCpu> cpu_;

  std::vector<Region> sram_free_;
  std::vector<Region> dram_free_;
  std::vector<std::vector<bool>> task_used_;  // per shell id, per slot
  std::uint32_t next_shell_id_ = 0;
  int pending_apps_ = 0;
  bool started_ = false;
  sim::FaultInjector injector_;
  ShardPlan shard_plan_;
  ShardAssignment shard_assignment_;
  bool shard_planned_ = false;
};

}  // namespace eclipse::app
