#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eclipse/app/configurator.hpp"
#include "eclipse/app/instance.hpp"
#include "eclipse/app/mode_set.hpp"
#include "eclipse/media/audio.hpp"

namespace eclipse::app {

/// Audio decoding application — software-only, on the DSP-CPU.
///
/// Section 6: "Audio decoding, variable-length encoding, and
/// de-multiplexing are executed in software on the media processor."
/// Two software tasks time-share the CPU with whatever else runs there:
///
///   feeder (CPU): fetches coded ADPCM blocks from off-chip memory and
///                 streams them through an on-chip FIFO,
///   decoder (CPU): decodes blocks to PCM and streams the samples to a
///                 byte sink.
///
/// Both tasks follow the abortable-step discipline, so audio work
/// interleaves with video tasks on the same processor.
/// Stream-buffer sizes and software timing of the audio graph.
struct AudioAppConfig {
  std::uint32_t block_buffer = 1024;  ///< feeder -> decoder FIFO bytes
  std::uint32_t pcm_buffer = 2048;    ///< decoder -> sink FIFO bytes
  std::uint32_t budget_cycles = 2000;
  sim::Cycle cycles_per_sample = 6;   ///< software ADPCM inner loop

  /// When false, the feeder task starts disabled (a demux task enables it
  /// once the audio elementary stream is staged).
  bool feeder_enabled = true;

  /// Bypass topology: the decoder task is detached and the feeder streams
  /// the coded blocks straight to the sink (audio muted / passed through
  /// to an off-chip consumer). Used as a mode of a multi-mode family to
  /// exercise live subgraph attach/detach.
  bool bypass = false;
};

class AudioDecodeApp {
 public:
  /// A named audio mode, e.g. {"play", {}} and {"bypass", {.bypass=true}}.
  using Mode = std::pair<std::string, AudioAppConfig>;

  AudioDecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> coded_stream,
                 const AudioAppConfig& cfg = {});

  /// Multi-mode constructor: validates the family up front and applies the
  /// first mode. A bypass mode detaches the decoder task and its streams;
  /// switching back re-attaches them live (diff-based transition with a
  /// partial drain of the affected FIFOs).
  AudioDecodeApp(EclipseInstance& inst, std::vector<std::uint8_t> coded_stream,
                 std::vector<Mode> modes);

  /// Live transition to another mode of the family. Detach/attach of the
  /// decoder subgraph drains only the audio FIFOs; other applications on
  /// the instance keep running.
  TransitionStats switchMode(std::string_view mode_name);

  [[nodiscard]] const std::string& currentMode() const { return handle_.currentMode(); }
  [[nodiscard]] const ModeSet& modes() const { return modes_; }

  [[nodiscard]] bool done() const;
  /// Decoded PCM samples (valid after completion).
  [[nodiscard]] std::vector<std::int16_t> pcm() const;
  /// Raw bytes the sink collected (coded blocks while a bypass mode ran).
  [[nodiscard]] const std::vector<std::uint8_t>& sinkBytes() const;

  /// Runtime control (pause/resume/drain/teardown) for this application.
  [[nodiscard]] AppHandle& handle() { return handle_; }
  [[nodiscard]] const AppHandle& handle() const { return handle_; }
  void teardown() { handle_.teardown(); }

  [[nodiscard]] sim::TaskId feederTask() const { return t_feeder_; }
  [[nodiscard]] sim::TaskId decoderTask() const { return t_decoder_; }

 private:
  struct FeederState;
  struct DecoderState;

  void initStreams(std::vector<std::uint8_t>& coded_stream);
  [[nodiscard]] coproc::SoftCpu::StepHandler feederStep() const;
  [[nodiscard]] coproc::SoftCpu::StepHandler decoderStep() const;
  /// The graph of one mode: play (feeder -> decoder -> sink) or bypass
  /// (feeder -> sink).
  [[nodiscard]] GraphSpec modeSpec(const std::string& name, const AudioAppConfig& cfg) const;
  void cacheTaskIds();

  EclipseInstance& inst_;
  coproc::ByteSink* sink_ = nullptr;
  std::shared_ptr<FeederState> feeder_;
  std::shared_ptr<DecoderState> decoder_;
  AppHandle handle_;
  ModeSet modes_{"audio-modes"};
  sim::TaskId t_feeder_ = 0, t_decoder_ = 0;
  std::uint32_t total_samples_ = 0;
  std::uint32_t block_frame_ = 0, pcm_frame_ = 0;
};

}  // namespace eclipse::app
