#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "eclipse/app/configurator.hpp"
#include "eclipse/app/instance.hpp"
#include "eclipse/app/mode_set.hpp"
#include "eclipse/coproc/soft_tasks.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::app {

/// Stream-buffer sizes of the encode graph.
struct EncodeAppConfig {
  std::uint32_t cur_buffer = 2048;     ///< source -> ME (current MBs)
  std::uint32_t res_buffer = 2048;     ///< ME -> FDCT and recon-loop block streams
  std::uint32_t hdr_buffer = 1024;     ///< ME -> VLE / ME -> recon headers
  std::uint32_t coef_buffer = 4096;    ///< QRLE -> VLE and QRLE -> DEQ
  std::uint32_t token_buffer = 256;    ///< recon -> source frame-done tokens
  std::uint32_t chunk_buffer = 1024;   ///< VLE -> byte sink
  std::uint32_t budget_cycles = 2000;
};

/// One MPEG encoding application on an Eclipse instance.
///
/// The encoder *embeds* a decoder (Section 2.1): the same DCT, RLSQ and
/// MC/ME coprocessors each run two tasks of this application —
///
///   source(CPU) -> ME(MC) -> FDCT(DCT) -> QRLE(RLSQ) -> VLE(CPU) -> sink
///                                             \-> DEQ(RLSQ) -> IDCT(DCT) -> RECON(MC)
///   RECON -> source: frame-done tokens close the reconstruction loop.
///
/// Declared as a GraphSpec and programmed by the Configurator over the
/// PI-bus; this class owns the resulting AppHandle.
class EncodeApp {
 public:
  /// A named encode mode (e.g. "hq"/"eco" with different task budgets).
  using Mode = std::pair<std::string, EncodeAppConfig>;

  EncodeApp(EclipseInstance& inst, std::vector<media::Frame> frames,
            const media::CodecParams& params, const EncodeAppConfig& cfg = {});

  /// Multi-mode constructor: validates the family up front and applies the
  /// first mode; the others are reachable live via switchMode(). Modes of
  /// a family must share buffer sizes (field-only transitions): the encode
  /// reconstruction loop never fully drains mid-clip, so stream re-binding
  /// is only possible between clips.
  EncodeApp(EclipseInstance& inst, std::vector<media::Frame> frames,
            const media::CodecParams& params, std::vector<Mode> modes);

  /// The GraphSpec the constructor applies. `sink_shell` names the byte
  /// sink's shell; the two handlers are the source and VLE software steps.
  static GraphSpec spec(const EncodeAppConfig& cfg, const std::string& sink_shell,
                        coproc::SoftCpu::StepHandler source_step,
                        coproc::SoftCpu::StepHandler vle_step,
                        const std::string& name = "encode");

  /// Live field-only transition to another mode of the family (budget /
  /// task-info rewrites over the PI-bus, no drain, no simulated cycles).
  TransitionStats switchMode(std::string_view mode_name);

  [[nodiscard]] const std::string& currentMode() const { return handle_.currentMode(); }
  [[nodiscard]] const ModeSet& modes() const { return modes_; }

  [[nodiscard]] bool done() const;
  /// The produced elementary stream (valid after completion).
  [[nodiscard]] const std::vector<std::uint8_t>& bitstream() const;

  /// Runtime control (pause/resume/drain/teardown) for this application.
  [[nodiscard]] AppHandle& handle() { return handle_; }
  [[nodiscard]] const AppHandle& handle() const { return handle_; }
  void teardown() { handle_.teardown(); }

  [[nodiscard]] sim::TaskId meTask() const { return t_me_; }
  [[nodiscard]] sim::TaskId fdctTask() const { return t_fdct_; }
  [[nodiscard]] sim::TaskId qrleTask() const { return t_qrle_; }
  [[nodiscard]] sim::TaskId deqTask() const { return t_deq_; }
  [[nodiscard]] sim::TaskId idctTask() const { return t_idct_; }
  [[nodiscard]] sim::TaskId reconTask() const { return t_recon_; }

 private:
  /// spec() bound to this app's sink shell and software handlers.
  GraphSpec modeSpec(const std::string& name, const EncodeAppConfig& cfg) const;
  void init(const media::CodecParams& params, int frame_count);

  EclipseInstance& inst_;
  coproc::ByteSink* sink_ = nullptr;
  std::unique_ptr<coproc::EncoderSource> source_;
  std::unique_ptr<coproc::VleTask> vle_;
  AppHandle handle_;
  ModeSet modes_{"encode-modes"};
  sim::TaskId t_me_ = 0, t_fdct_ = 0, t_qrle_ = 0;
  sim::TaskId t_deq_ = 0, t_idct_ = 0, t_recon_ = 0;
};

}  // namespace eclipse::app
