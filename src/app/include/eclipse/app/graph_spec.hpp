#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "eclipse/coproc/soft_cpu.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::app {

class EclipseInstance;

/// One end of a stream: a port of a named task. Port ids follow the
/// task-level interface (small integers, meaningful to the coprocessor).
struct PortRef {
  std::string task;
  sim::PortId port = 0;
};

/// Declarative description of one task in an application graph.
struct TaskSpec {
  std::string name;                    ///< unique within the spec
  std::string shell;                   ///< shell name on the instance ("vld", "dsp-cpu", ...)
  std::uint32_t budget_cycles = 2000;  ///< weighted round-robin budget
  std::uint32_t task_info = 0;         ///< parameter word returned by GetTask
  bool enabled = true;                 ///< initial scheduler-enable state
  bool source = false;                 ///< data injector: disabled first when draining
  /// Software step bound when the shell fronts the media processor
  /// (SoftCpu). Must be empty for hardware coprocessor shells.
  coproc::SoftCpu::StepHandler software;
};

/// Declarative description of one stream (a bounded FIFO in on-chip SRAM
/// with one producer and one consumer access point).
struct StreamSpec {
  std::string name;                ///< unique within the spec
  PortRef producer;                ///< output port writing the stream
  PortRef consumer;                ///< input port reading the stream
  std::uint32_t buffer_bytes = 0;  ///< FIFO capacity (multiple of the cache line)
};

/// Raised by GraphSpec::validate on a malformed or unsatisfiable graph.
class GraphSpecError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Declarative application graph — the *what* of an Eclipse application,
/// decoupled from *how* it is programmed onto a running instance. A
/// GraphSpec names tasks (bound to shells by name) and streams (FIFO edges
/// between task ports); the Configurator validates it against an instance
/// and programs the shell stream/task tables over the PI-bus, exactly like
/// the CPU of a real subsystem (Sections 2–5 of the paper).
class GraphSpec {
 public:
  explicit GraphSpec(std::string name = "app") : name_(std::move(name)) {}

  /// Adds a task; returns *this for fluent graph building.
  GraphSpec& task(TaskSpec t) {
    tasks_.push_back(std::move(t));
    return *this;
  }

  /// Adds a stream; returns *this for fluent graph building.
  GraphSpec& stream(StreamSpec s) {
    streams_.push_back(std::move(s));
    return *this;
  }

  /// Shorthand: `spec.stream("coef", "vld", 0, "rlsq", 0, 4096)`.
  GraphSpec& stream(std::string name, std::string producer_task, sim::PortId out_port,
                    std::string consumer_task, sim::PortId in_port, std::uint32_t buffer_bytes) {
    return stream(StreamSpec{std::move(name),
                             PortRef{std::move(producer_task), out_port},
                             PortRef{std::move(consumer_task), in_port},
                             buffer_bytes});
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<TaskSpec>& tasks() const { return tasks_; }
  [[nodiscard]] const std::vector<StreamSpec>& streams() const { return streams_; }

  /// Finds a task by name; nullptr when absent.
  [[nodiscard]] const TaskSpec* findTask(std::string_view task_name) const;

  /// Instance-independent structural validation: dangling ports,
  /// double-bound endpoints, duplicate names, empty graphs. Throws
  /// GraphSpecError naming the offending element. Used on its own by the
  /// mode-transition path, where capacity is settled incrementally by the
  /// diff (freed resources are reused before new ones are allocated).
  void validateStructure() const;

  /// Interface checking before deployment: validateStructure() plus
  /// software-binding checks and capacity validation against the instance
  /// (unknown shells, task-slot and stream-row exhaustion, SRAM headroom,
  /// buffer size vs. cache-line constraints). Throws GraphSpecError with a
  /// message naming the offending element.
  void validate(EclipseInstance& inst) const;

 private:
  std::string name_;
  std::vector<TaskSpec> tasks_;
  std::vector<StreamSpec> streams_;
};

}  // namespace eclipse::app
