#pragma once

#include <string>
#include <vector>

#include "eclipse/sim/stats.hpp"

namespace eclipse::app {

/// Text renderer for simulation time-series — the "performance viewer" of
/// Section 7 / Figure 9, reduced to deterministic terminal output. Each
/// series is rendered as one panel of a vertical stack; values are sampled
/// into `width` columns and quantised to `height` rows.
struct ChartOptions {
  int width = 100;
  int height = 8;
  bool show_scale = true;
};

/// Renders one series as an ASCII area chart.
[[nodiscard]] std::string renderSeries(const sim::TimeSeries& series, const ChartOptions& opts = {});

/// Renders several series as stacked panels with a shared time axis.
[[nodiscard]] std::string renderStack(const std::vector<const sim::TimeSeries*>& series,
                                      const ChartOptions& opts = {});

/// CSV export (cycle, value) with one column per series; rows are the union
/// of sample times (empty cells where a series has no sample).
[[nodiscard]] std::string toCsv(const std::vector<const sim::TimeSeries*>& series);

/// Differentiates a cumulative counter series into a per-interval rate
/// series (e.g. cumulative busy cycles -> windowed utilization).
[[nodiscard]] sim::TimeSeries differentiate(const sim::TimeSeries& cumulative, std::string name);

/// Renders 0..1-valued series (task stall/activity traces) as one-line
/// strips on a shared time axis — the task-activity lanes of the Figure-9
/// viewer. Glyphs by bucket mean: ' ' (0), '.' , ':', '#' (1).
[[nodiscard]] std::string renderActivityStrips(const std::vector<const sim::TimeSeries*>& series,
                                               int width = 100);

}  // namespace eclipse::app
