#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "eclipse/app/graph_spec.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::app {

class EclipseInstance;

/// Element-level delta between two application graphs, computed by name.
///
/// A task keeps its identity (shell placement, task slot, software
/// registration) across modes when both graphs name it; only its scalar
/// table fields (budget, info, enable) may differ ("updated"). A stream is
/// kept — its table rows and SRAM buffer untouched by a transition — only
/// when name, both endpoints (task and port) and the buffer size all
/// match; any other change re-binds it as a remove+add pair.
struct GraphDiff {
  std::vector<TaskSpec> tasks_added;        ///< in target only
  std::vector<std::string> tasks_removed;   ///< in current only
  std::vector<std::string> tasks_updated;   ///< kept, scalar fields differ
  std::vector<std::string> tasks_kept;      ///< kept, scalar fields equal
  std::vector<StreamSpec> streams_added;    ///< programmed fresh
  std::vector<std::string> streams_removed; ///< drained, rows invalidated
  std::vector<std::string> streams_kept;    ///< rows and buffer reused in place

  /// True when the transition must drain and re-bind stream rows (any
  /// stream added or removed); false for field-only transitions, which
  /// never pause the graph.
  [[nodiscard]] bool touchesStreams() const {
    return !streams_added.empty() || !streams_removed.empty();
  }

  [[nodiscard]] bool empty() const {
    return tasks_added.empty() && tasks_removed.empty() && tasks_updated.empty() &&
           streams_added.empty() && streams_removed.empty();
  }
};

/// Computes the task/stream delta between two graphs (see GraphDiff).
[[nodiscard]] GraphDiff diffGraphs(const GraphSpec& current, const GraphSpec& target);

/// Cost record of one live mode transition (AppHandle::switchTo):
/// simulated cycles spent draining the affected subgraph plus every PI-bus
/// access the transition issued — the paper-level "mode transition delay"
/// metric the bench compares against a cold teardown+relaunch.
struct TransitionStats {
  std::string from;               ///< mode name before the transition
  std::string to;                 ///< mode name after the transition
  sim::Cycle cycles = 0;          ///< simulated cycles (partial drain)
  std::uint64_t mmio_writes = 0;  ///< PI-bus writes issued
  std::uint64_t mmio_reads = 0;   ///< PI-bus reads issued (quiescence polls)
  std::uint32_t tasks_added = 0;
  std::uint32_t tasks_removed = 0;
  std::uint32_t tasks_updated = 0;
  std::uint32_t tasks_kept = 0;
  std::uint32_t streams_added = 0;
  std::uint32_t streams_removed = 0;
  std::uint32_t streams_kept = 0;
  bool drained = false;  ///< a partial drain ran (false for field-only diffs)
};

/// A validated family of application graphs over shared shells — the
/// multi-mode application model: one AppHandle, several named GraphSpecs
/// ("sd", "hd", "degraded", ...), live diff-based transitions between them
/// via AppHandle::switchMode. Mode names are the GraphSpec names.
class ModeSet {
 public:
  explicit ModeSet(std::string name = "modes") : name_(std::move(name)) {}

  /// Adds a mode; the spec's name is the mode name. Throws GraphSpecError
  /// on a duplicate. Returns *this for fluent building.
  ModeSet& mode(GraphSpec spec);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<GraphSpec>& modes() const { return modes_; }

  /// Mode by name; nullptr when absent.
  [[nodiscard]] const GraphSpec* find(std::string_view mode_name) const;
  /// Mode by name; throws std::out_of_range when absent.
  [[nodiscard]] const GraphSpec& at(std::string_view mode_name) const;

  /// Static validation before any MMIO write happens: every mode passes
  /// GraphSpec::validate against the instance, and task identity is
  /// consistent across modes — a task name shared by two modes must keep
  /// its shell and its software/hardware nature, because transitions keep
  /// the task slot in place. Throws GraphSpecError.
  void validate(EclipseInstance& inst) const;

 private:
  std::string name_;
  std::vector<GraphSpec> modes_;
};

}  // namespace eclipse::app
