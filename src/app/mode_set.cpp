#include "eclipse/app/mode_set.hpp"

#include <map>
#include <stdexcept>

#include "eclipse/app/instance.hpp"

namespace eclipse::app {

namespace {

bool sameEndpoint(const PortRef& a, const PortRef& b) {
  return a.task == b.task && a.port == b.port;
}

bool sameScalarFields(const TaskSpec& a, const TaskSpec& b) {
  return a.budget_cycles == b.budget_cycles && a.task_info == b.task_info &&
         a.enabled == b.enabled && a.source == b.source;
}

}  // namespace

GraphDiff diffGraphs(const GraphSpec& current, const GraphSpec& target) {
  GraphDiff d;

  for (const TaskSpec& t : target.tasks()) {
    const TaskSpec* cur = current.findTask(t.name);
    if (cur == nullptr) {
      d.tasks_added.push_back(t);
    } else if (sameScalarFields(*cur, t)) {
      d.tasks_kept.push_back(t.name);
    } else {
      d.tasks_updated.push_back(t.name);
    }
  }
  for (const TaskSpec& t : current.tasks()) {
    if (target.findTask(t.name) == nullptr) d.tasks_removed.push_back(t.name);
  }

  auto findStream = [](const GraphSpec& g, const std::string& name) -> const StreamSpec* {
    for (const StreamSpec& s : g.streams()) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };

  for (const StreamSpec& s : target.streams()) {
    const StreamSpec* cur = findStream(current, s.name);
    if (cur != nullptr && sameEndpoint(cur->producer, s.producer) &&
        sameEndpoint(cur->consumer, s.consumer) && cur->buffer_bytes == s.buffer_bytes) {
      d.streams_kept.push_back(s.name);
    } else {
      d.streams_added.push_back(s);
    }
  }
  for (const StreamSpec& s : current.streams()) {
    const StreamSpec* tgt = findStream(target, s.name);
    if (tgt == nullptr || !sameEndpoint(tgt->producer, s.producer) ||
        !sameEndpoint(tgt->consumer, s.consumer) || tgt->buffer_bytes != s.buffer_bytes) {
      d.streams_removed.push_back(s.name);
    }
  }

  return d;
}

ModeSet& ModeSet::mode(GraphSpec spec) {
  if (find(spec.name()) != nullptr) {
    throw GraphSpecError("ModeSet '" + name_ + "': duplicate mode '" + spec.name() + "'");
  }
  modes_.push_back(std::move(spec));
  return *this;
}

const GraphSpec* ModeSet::find(std::string_view mode_name) const {
  for (const GraphSpec& g : modes_) {
    if (g.name() == mode_name) return &g;
  }
  return nullptr;
}

const GraphSpec& ModeSet::at(std::string_view mode_name) const {
  if (const GraphSpec* g = find(mode_name)) return *g;
  std::string known;
  for (const GraphSpec& g : modes_) {
    if (!known.empty()) known += ", ";
    known += g.name();
  }
  throw std::out_of_range("ModeSet '" + name_ + "': no mode named '" + std::string(mode_name) +
                          "' (known: " + known + ")");
}

void ModeSet::validate(EclipseInstance& inst) const {
  if (modes_.empty()) throw GraphSpecError("ModeSet '" + name_ + "': no modes");

  // Task identity across modes: the first mode that names a task pins its
  // shell and software-ness; every later mode must agree, because a
  // transition keeps the slot and only rewrites scalar fields.
  struct Identity {
    const std::string* mode;
    const std::string* shell;
    bool software;
  };
  std::map<std::string, Identity> identities;
  for (const GraphSpec& g : modes_) {
    g.validate(inst);
    for (const TaskSpec& t : g.tasks()) {
      auto [it, fresh] =
          identities.try_emplace(t.name, Identity{&g.name(), &t.shell, bool(t.software)});
      if (fresh) continue;
      if (*it->second.shell != t.shell) {
        throw GraphSpecError("ModeSet '" + name_ + "': task '" + t.name + "' is on shell '" +
                             *it->second.shell + "' in mode '" + *it->second.mode +
                             "' but on shell '" + t.shell + "' in mode '" + g.name() +
                             "' — rename the task if it moves");
      }
      if (it->second.software != bool(t.software)) {
        throw GraphSpecError("ModeSet '" + name_ + "': task '" + t.name +
                             "' switches between software and hardware across modes '" +
                             *it->second.mode + "' and '" + g.name() + "'");
      }
    }
  }
}

}  // namespace eclipse::app
