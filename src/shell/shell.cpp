#include "eclipse/shell/shell.hpp"

#include <algorithm>
#include <stdexcept>

#include "eclipse/sim/fault.hpp"

namespace eclipse::shell {

namespace {

/// Register map strides (32-bit words). A shell-control block of
/// kShellCtlWords registers (watchdog config, sticky fault counters)
/// follows the task table.
constexpr sim::Addr kStreamRowWords = 32;
constexpr sim::Addr kTaskRowWords = 32;
constexpr sim::Addr kShellCtlWords = 8;

std::uint32_t lo32(std::uint64_t v) { return static_cast<std::uint32_t>(v); }
std::uint32_t hi32(std::uint64_t v) { return static_cast<std::uint32_t>(v >> 32); }

}  // namespace

Shell::Shell(sim::Simulator& sim, const ShellParams& params, mem::SharedSram& sram,
             mem::MessageNetwork& network)
    : sim_(sim),
      params_(params),
      sram_(sram),
      network_(network),
      streams_(params.max_streams),
      tasks_(params.max_tasks),
      ports_(params.max_streams),
      sched_event_(sim),
      space_event_(sim) {
  network_.attach(params_.id, [this](const mem::SyncMessage& msg) { onSyncMessage(msg); });
}

// ---------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------

void Shell::configureTask(sim::TaskId task, const TaskConfig& cfg) {
  tasks_.configure(task, cfg);
  sched_event_.notifyAll();
}

std::uint32_t Shell::configureStream(const StreamConfig& cfg) {
  if (cfg.buffer_bytes == 0 || cfg.buffer_bytes % params_.cache_line_bytes != 0 ||
      cfg.buffer_base % params_.cache_line_bytes != 0) {
    throw std::invalid_argument(
        "Shell: stream buffers must be non-empty and cache-line aligned (base and size)");
  }
  const std::uint32_t row = streams_.configure(cfg);
  ports_[row].cache = std::make_unique<StreamCache>(
      sim_, sram_, params_.cache_line_bytes, params_.cache_lines_per_port,
      static_cast<int>(params_.id));
  return row;
}

void Shell::setTaskEnabled(sim::TaskId task, bool enabled) {
  tasks_.row(task).enabled = enabled;
  if (enabled) sched_event_.notifyAll();
}

// ---------------------------------------------------------------------
// Scheduler (Section 5.3)
// ---------------------------------------------------------------------

bool Shell::blockedNow(TaskRow& t) {
  if (!t.blocked) return false;
  if (t.blocked_row >= 0) {
    const StreamRow& row = streams_.row(static_cast<std::uint32_t>(t.blocked_row));
    if (row.space >= t.blocked_need) {
      t.blocked = false;
      t.blocked_row = -1;
      return false;
    }
  }
  // Naive-scheduler ablation: without best guess the scheduler considers
  // every enabled task runnable, paying a wasted processing-step attempt
  // for tasks that are in fact still blocked.
  return params_.best_guess;
}

sim::Task<GetTaskResult> Shell::getTask() {
  co_await sim_.delay(params_.gettask_latency);

  // Charge the elapsed processing step to the task that just yielded. A
  // row torn down mid-step (valid cleared over MMIO) takes no charge: the
  // slot may already belong to a later application.
  if (current_task_ != sim::kNoTask) {
    TaskRow& t = tasks_.row(current_task_);
    if (t.valid) {
      const sim::Cycle elapsed = sim_.now() - last_gettask_return_;
      t.busy_cycles += elapsed;
      t.budget_left -= std::min(t.budget_left, elapsed);
      ++t.gettask_count;
      t.step_cycles.add(static_cast<double>(elapsed));
    }
  }

  while (true) {
    sim::TaskId chosen = sim::kNoTask;

    // Budget rule: the running task keeps the coprocessor while its budget
    // lasts and it is not blocked.
    if (current_task_ != sim::kNoTask) {
      TaskRow& cur = tasks_.row(current_task_);
      if (cur.valid && cur.enabled && cur.budget_left > 0 && !blockedNow(cur)) {
        chosen = current_task_;
      }
    }

    if (chosen == sim::kNoTask) {
      // Weighted round-robin over the task table.
      for (std::uint32_t i = 0; i < tasks_.capacity(); ++i) {
        const std::uint32_t idx = (rr_index_ + i) % tasks_.capacity();
        TaskRow& t = tasks_.row(static_cast<sim::TaskId>(idx));
        if (t.valid && t.enabled && !blockedNow(t)) {
          chosen = static_cast<sim::TaskId>(idx);
          rr_index_ = (idx + 1) % tasks_.capacity();
          t.budget_left = t.budget_cycles;
          break;
        }
      }
    }

    if (chosen != sim::kNoTask) {
      TaskRow& t = tasks_.row(chosen);
      ++t.schedule_count;
      if (chosen != current_task_) {
        ++t.switch_count;
        ++task_switches_;
      }
      t.last_selected_at = sim_.now();
      current_task_ = chosen;
      last_gettask_return_ = sim_.now();
      co_return GetTaskResult{chosen, t.task_info};
    }

    // Nothing runnable: the coprocessor idles until synchronization
    // messages (or reconfiguration) make a task ready.
    idle_since_ = sim_.now();
    co_await sched_event_.wait();
    idle_cycles_ += sim_.now() - *idle_since_;
    idle_since_.reset();
  }
}

// ---------------------------------------------------------------------
// Synchronization (Section 5.1)
// ---------------------------------------------------------------------

sim::Task<bool> Shell::getSpace(sim::TaskId task, sim::PortId port, std::uint32_t n_bytes) {
  co_await sim_.delay(params_.sync_latency);
  const std::uint32_t idx = streams_.lookup(task, port);
  StreamRow& row = streams_.row(idx);
  ++row.getspace_calls;

  if (n_bytes > row.size) {
    throw std::invalid_argument("Shell::getSpace: request larger than the stream buffer");
  }
  if (n_bytes <= row.space) {
    if (n_bytes > row.granted) {
      // Window extension: data in the cache overlapping the newly granted
      // region may be stale (observation 2) — invalidate it.
      const std::uint64_t from = row.pos + row.granted;
      const std::uint64_t len = n_bytes - row.granted;
      forEachSegment(row, from, len, [&](sim::Addr addr, std::uint64_t seg, std::uint64_t) {
        ports_[idx].cache->invalidateRange(row, addr, seg);
      });
      row.granted = n_bytes;
      // Prefetch the first line of the fresh window for input ports.
      if (params_.prefetch && !row.is_producer) {
        const std::uint64_t first_pos = from;
        const sim::Addr addr = row.base + first_pos % row.size;
        const sim::Addr line = addr / params_.cache_line_bytes * params_.cache_line_bytes;
        ports_[idx].cache->startPrefetch(row, line);
      }
    }
    co_return true;
  }
  ++row.getspace_denied;
  TaskRow& t = tasks_.row(task);
  if (!t.blocked) t.blocked_since = sim_.now();
  t.blocked = true;
  t.blocked_row = static_cast<std::int32_t>(idx);
  t.blocked_need = n_bytes;
  co_return false;
}

sim::Task<void> Shell::putSpace(sim::TaskId task, sim::PortId port, std::uint32_t n_bytes) {
  co_await sim_.delay(params_.sync_latency);
  const std::uint32_t idx = streams_.lookup(task, port);
  StreamRow& row = streams_.row(idx);
  ++row.putspace_calls;
  if (n_bytes > row.granted) {
    throw std::logic_error("Shell::putSpace: commit exceeds the granted window");
  }

  if (row.is_producer) {
    // Observation 3: flush dirty data in the committed region before the
    // putspace message makes it visible to the consumer.
    std::uint64_t done = 0;
    while (done < n_bytes) {
      const std::uint64_t off = (row.pos + done) % row.size;
      const std::uint64_t seg = std::min<std::uint64_t>(n_bytes - done, row.size - off);
      co_await ports_[idx].cache->flushRange(row, row.base + off, seg);
      done += seg;
    }
  }

  // Fault hook: corrupt the payload of the committed window in SRAM just
  // before it becomes visible to the consumer. The packet framing (u32
  // length + tag, first 5 bytes of the commit) is left intact so the
  // corruption surfaces downstream as a *parse* error inside the packet —
  // the recoverable case — rather than desynchronised framing.
  if (sim::FaultInjector* inj = sim_.faults(); inj != nullptr && row.is_producer) {
    if (auto mask = inj->corruptPayload(params_.id, task, port, sim_.now())) {
      auto storage = sram_.storage().view();
      forEachSegment(row, row.pos, n_bytes,
                     [&](sim::Addr addr, std::uint64_t seg, std::uint64_t off0) {
                       for (std::uint64_t k = 0; k < seg; ++k) {
                         if (off0 + k >= 5) storage[addr + k] ^= *mask;
                       }
                     });
      inj->logTrigger(
          {sim::FaultKind::CorruptPayload, sim_.now(), params_.id, task, n_bytes});
    }
  }

  row.space -= n_bytes;
  row.granted -= n_bytes;
  row.pos += n_bytes;

  network_.send(mem::SyncMessage{params_.id, row.remote_shell, row.remote_row, n_bytes});
}

void Shell::onSyncMessage(const mem::SyncMessage& msg) {
  StreamRow& row = streams_.row(msg.dst_row);
  if (!row.valid) {
    // Late putspace for a row torn down (or never configured) while the
    // message was in flight — a teardown race, not a programming error.
    // Hardware drops it and bumps a sticky counter the CPU can inspect.
    ++late_sync_drops_;
    return;
  }
  row.space += msg.bytes;
  ++sync_messages_rx_;
  // Best-guess readiness may have changed; wake an idle coprocessor and
  // any blocking-style waiters.
  sched_event_.notifyAll();
  space_event_.notifyAll();
}

sim::Task<void> Shell::waitSpace(sim::TaskId task, sim::PortId port, std::uint32_t n_bytes) {
  while (true) {
    const bool ok = co_await getSpace(task, port, n_bytes);
    if (ok) co_return;
    co_await space_event_.wait();
  }
}

// ---------------------------------------------------------------------
// Data transport (Section 5.2)
// ---------------------------------------------------------------------

sim::Task<WindowView> Shell::acquire(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                                     std::size_t n, bool writing) {
  const std::uint32_t idx = streams_.lookup(task, port);
  StreamRow& row = streams_.row(idx);
  if (writing) {
    if (!row.is_producer) throw std::logic_error("Shell::write: write on an input port");
  } else {
    if (row.is_producer) throw std::logic_error("Shell::read: read on an output port");
  }
  if (offset + n > row.granted) {
    throw std::logic_error(writing ? "Shell::write: access outside the granted window"
                                   : "Shell::read: access outside the granted window");
  }
  // Port handshake plus data transfer over the coprocessor interface.
  const sim::Cycle xfer =
      params_.io_latency + (n + params_.port_width_bytes - 1) / params_.port_width_bytes;
  co_await sim_.delay(xfer);

  if (writing) {
    ++row.write_calls;
  } else {
    ++row.read_calls;
  }
  row.bytes_transferred += n;

  // Prefetch hint: the cyclically next line after this read, if still
  // inside the granted window.
  std::optional<sim::Addr> hint;
  if (!writing && params_.prefetch) {
    const std::uint64_t end_pos = row.pos + offset + n;
    const std::uint64_t next_line_pos =
        (end_pos + params_.cache_line_bytes - 1) / params_.cache_line_bytes *
        params_.cache_line_bytes;
    if (next_line_pos < row.pos + row.granted) {
      hint = row.base + next_line_pos % row.size;
    }
  }

  // Replay the cache traffic of the copying transport path: the same
  // per-line hit / miss / fill / dirty-mark walk, without moving bytes.
  const sim::Cycle t0 = sim_.now() - xfer;  // include the port handshake
  std::uint64_t done = 0;
  const std::uint64_t start = row.pos + offset;
  while (done < n) {
    const std::uint64_t off = (start + done) % row.size;
    const std::uint64_t seg = std::min<std::uint64_t>(n - done, row.size - off);
    if (writing) {
      co_await ports_[idx].cache->touchWrite(row, row.base + off,
                                             static_cast<std::size_t>(seg));
    } else {
      const bool last = done + seg >= n;
      co_await ports_[idx].cache->touchRead(row, row.base + off, static_cast<std::size_t>(seg),
                                            last ? hint : std::nullopt);
    }
    done += seg;
  }
  row.access_latency.add(static_cast<double>(sim_.now() - t0));

  // Build the scatter-gather view straight into the FIFO's SRAM bytes
  // (≤ 2 segments: the window may wrap the cyclic buffer once, since the
  // granted window never exceeds the buffer size).
  WindowView v;
  v.shell_ = this;
  v.task_ = task;
  v.port_ = port;
  v.commit_bytes_ = static_cast<std::uint32_t>(offset + n);
  const auto storage = sram_.storage().view();
  forEachSegment(row, start, n, [&](sim::Addr addr, std::uint64_t seg, std::uint64_t) {
    v.chunks_[v.n_chunks_++] =
        WindowView::Chunk{storage.data() + addr, static_cast<std::size_t>(seg)};
  });
  co_return v;
}

sim::Task<WindowView> Shell::acquireRead(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                                         std::size_t n) {
  co_return co_await acquire(task, port, offset, n, /*writing=*/false);
}

sim::Task<WindowView> Shell::acquireWrite(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                                          std::size_t n) {
  co_return co_await acquire(task, port, offset, n, /*writing=*/true);
}

sim::Task<void> Shell::read(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                            std::span<std::uint8_t> out) {
  WindowView v = co_await acquire(task, port, offset, out.size(), /*writing=*/false);
  v.copyTo(out);
}

sim::Task<void> Shell::write(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                             std::span<const std::uint8_t> in) {
  WindowView v = co_await acquire(task, port, offset, in.size(), /*writing=*/true);
  v.copyFrom(in);
}

sim::Task<void> WindowView::commit() {
  if (shell_ == nullptr) throw std::logic_error("WindowView::commit: empty view");
  Shell* sh = shell_;
  shell_ = nullptr;
  co_await sh->putSpace(task_, port_, commit_bytes_);
}

// ---------------------------------------------------------------------
// Fault containment
// ---------------------------------------------------------------------

void Shell::latchFault(sim::TaskId task, FaultCause cause, std::int32_t row,
                       const std::string& what) {
  TaskRow& t = tasks_.row(task);
  if (!t.valid) return;
  ++t.fault_count;
  if (!t.faulted) {
    // First fault wins: the register keeps the original cause so the CPU
    // sees the root event, not a cascade symptom.
    t.faulted = true;
    t.fault_cause = cause;
    t.fault_cycle = sim_.now();
    t.fault_row = row;
    t.fault_what = what;
    ++faults_latched_;
  }
  // Containment: the scheduler skips the task from now on; sibling tasks
  // on the same coprocessor keep running.
  t.enabled = false;
  sim_.trace(1, "[" + params_.name + "] fault latched: task " + std::to_string(task) + " " +
                    faultCauseName(cause) + " @" + std::to_string(sim_.now()) + ": " + what);
  if (!fault_observers_.empty()) {
    // Copy: an observer may add/remove observers (e.g. teardown) mid-call.
    auto observers = fault_observers_;
    for (auto& [id, fn] : observers) fn(task, t);
  }
}

void Shell::clearFault(sim::TaskId task, bool reenable) {
  TaskRow& t = tasks_.row(task);
  if (!t.valid) return;
  t.faulted = false;
  t.fault_cause = FaultCause::None;
  t.fault_cycle = 0;
  t.fault_row = -1;
  t.fault_what.clear();
  if (reenable) {
    t.enabled = true;
    sched_event_.notifyAll();
  }
}

int Shell::addFaultObserver(FaultObserver fn) {
  const int id = next_observer_id_++;
  fault_observers_.emplace_back(id, std::move(fn));
  return id;
}

void Shell::removeFaultObserver(int id) {
  std::erase_if(fault_observers_, [id](const auto& p) { return p.first == id; });
}

void Shell::startWatchdog(sim::Cycle timeout, sim::Cycle period) {
  params_.watchdog_timeout = timeout;
  if (period > 0) params_.watchdog_period = period;
  if (timeout == 0) {
    watchdog_running_ = false;  // process exits at its next tick
    return;
  }
  if (!watchdog_running_) {
    watchdog_running_ = true;
    sim_.spawn(watchdogProcess(), params_.name + ".watchdog", shard_);
  }
}

sim::Task<void> Shell::watchdogProcess() {
  while (watchdog_running_ && params_.watchdog_timeout > 0) {
    co_await sim_.delay(params_.watchdog_period);
    if (!watchdog_running_ || params_.watchdog_timeout == 0) break;
    scanStalls();
  }
  watchdog_running_ = false;
}

void Shell::scanStalls() {
  const sim::Cycle now = sim_.now();
  const sim::Cycle timeout = params_.watchdog_timeout;

  // Per-stream progress check: a task blocked on a GetSpace denial with no
  // space granted for `timeout` cycles latches a stall into the stream row.
  // Detection only — the stall register is CPU-readable; nothing is
  // disabled, so a merely-slow peer never kills a healthy task.
  for (std::uint32_t i = 0; i < tasks_.capacity(); ++i) {
    TaskRow& t = tasks_.row(static_cast<sim::TaskId>(i));
    if (!t.valid || !t.enabled || !t.blocked || t.blocked_row < 0) continue;
    if (now - t.blocked_since < timeout) continue;
    StreamRow& r = streams_.row(static_cast<std::uint32_t>(t.blocked_row));
    if (!r.valid || r.stalled) continue;
    if (r.space >= t.blocked_need) continue;  // space arrived, task not yet rescheduled
    r.stalled = true;
    r.stall_cycle = now;
    ++stalls_latched_;
    sim_.trace(1, "[" + params_.name + "] stall latched: task " + std::to_string(i) +
                      " row " + std::to_string(t.blocked_row) + " needs " +
                      std::to_string(t.blocked_need) + "B, has " + std::to_string(r.space) +
                      "B since cycle " + std::to_string(t.blocked_since));
  }

  // Step-overrun check: the scheduled task has not come back to GetTask
  // for `timeout` cycles — it is wedged inside a processing step (e.g. an
  // injected hang), which blocks every sibling on this coprocessor. This
  // one *is* a task fault: latch Hang so the scheduler moves on when the
  // wedged coroutine finally yields.
  if (current_task_ != sim::kNoTask && !idle_since_.has_value()) {
    TaskRow& t = tasks_.row(current_task_);
    if (t.valid && t.enabled && !t.faulted && now - last_gettask_return_ >= timeout) {
      latchFault(current_task_, FaultCause::Hang, -1,
                 "processing step exceeded watchdog timeout (" +
                     std::to_string(now - last_gettask_return_) + " cycles)");
    }
  }
}

// ---------------------------------------------------------------------
// Measurement
// ---------------------------------------------------------------------

double Shell::utilization(sim::Cycle elapsed) const {
  if (elapsed == 0) return 0.0;
  sim::Cycle idle = idle_cycles_;
  if (idle_since_.has_value() && sim_.now() > *idle_since_) {
    idle += sim_.now() - *idle_since_;  // still parked in GetTask
  }
  const double busy = static_cast<double>(elapsed - std::min(elapsed, idle));
  return busy / static_cast<double>(elapsed);
}

void Shell::recycle() {
  // Fresh scheduler: next GetTask starts its round-robin scan at slot 0
  // with no task charged, exactly like a cold shell. Event waiter lists
  // hold handles into coroutine frames destroyProcesses() already freed.
  current_task_ = sim::kNoTask;
  rr_index_ = 0;
  last_gettask_return_ = 0;
  idle_since_.reset();
  sched_event_.clearWaiters();
  space_event_.clearWaiters();
  // The profiler and watchdog processes died with destroyProcesses();
  // clear their running flags (and the armed timeout) so a recycled
  // instance starts without observers until re-armed.
  profiling_ = false;
  watchdog_running_ = false;
  params_.watchdog_timeout = 0;
}

void Shell::startProfiler() {
  if (params_.profiler_period == 0) {
    throw std::logic_error("Shell::startProfiler: profiler_period is 0");
  }
  if (profiling_) return;
  profiling_ = true;
  sim_.spawn(profilerProcess(), params_.name + ".profiler", shard_);
}

sim::Task<void> Shell::profilerProcess() {
  while (profiling_) {
    for (std::uint32_t i = 0; i < streams_.capacity(); ++i) {
      StreamRow& row = streams_.row(i);
      if (row.valid) row.fill_series.sample(sim_.now(), static_cast<double>(row.space));
    }
    for (std::uint32_t i = 0; i < tasks_.capacity(); ++i) {
      TaskRow& t = tasks_.row(static_cast<sim::TaskId>(i));
      if (t.valid) t.stall_series.sample(sim_.now(), blockedNow(t) ? 1.0 : 0.0);
    }
    co_await sim_.delay(params_.profiler_period);
  }
}

// ---------------------------------------------------------------------
// Memory-mapped tables (PI-bus)
// ---------------------------------------------------------------------

sim::Addr Shell::mmioWindowBytes() const {
  return (static_cast<sim::Addr>(params_.max_streams) * kStreamRowWords +
          static_cast<sim::Addr>(params_.max_tasks) * kTaskRowWords + kShellCtlWords) *
         4;
}

void Shell::mapMmio(mem::PiBus& bus, sim::Addr base) {
  bus.attach(
      params_.name, base, mmioWindowBytes(),
      [this](sim::Addr off) { return mmioRead(off); },
      [this](sim::Addr off, std::uint32_t v) { mmioWrite(off, v); });
}

std::uint32_t Shell::mmioRead(sim::Addr offset) const {
  const sim::Addr word = offset / 4;
  const sim::Addr stream_words = static_cast<sim::Addr>(params_.max_streams) * kStreamRowWords;
  if (word < stream_words) {
    const auto rix = static_cast<std::uint32_t>(word / kStreamRowWords);
    const auto f = static_cast<std::uint32_t>(word % kStreamRowWords);
    const StreamRow& r = streams_.row(rix);
    switch (f) {
      case 0: return r.valid ? 1 : 0;
      case 1: return static_cast<std::uint32_t>(r.task);
      case 2: return static_cast<std::uint32_t>(r.port);
      case 3: return r.is_producer ? 1 : 0;
      case 4: return static_cast<std::uint32_t>(r.base);
      case 5: return r.size;
      case 6: return r.space;
      case 7: return r.remote_shell;
      case 8: return r.remote_row;
      case 9: return lo32(r.pos);
      case 10: return hi32(r.pos);
      case 11: return r.granted;
      case 12: return lo32(r.bytes_transferred);
      case 13: return hi32(r.bytes_transferred);
      case 14: return lo32(r.getspace_calls);
      case 15: return lo32(r.getspace_denied);
      case 16: return lo32(r.putspace_calls);
      case 17: return lo32(r.read_calls);
      case 18: return lo32(r.write_calls);
      case 19: return lo32(r.cache_hits);
      case 20: return lo32(r.cache_misses);
      case 21: return lo32(r.cache_flushes);
      case 22: return lo32(r.cache_invalidations);
      case 23: return lo32(r.prefetches);
      case 24: return lo32(r.access_latency.count());
      case 25: return static_cast<std::uint32_t>(r.access_latency.mean());
      case 26: return static_cast<std::uint32_t>(r.access_latency.max());
      case 27: return r.stalled ? 1 : 0;
      case 28: return lo32(r.stall_cycle);
      case 29: return hi32(r.stall_cycle);
      default: return 0;
    }
  }
  const sim::Addr tword = word - stream_words;
  const sim::Addr task_words = static_cast<sim::Addr>(params_.max_tasks) * kTaskRowWords;
  if (tword >= task_words) {
    // Shell-control block: watchdog configuration and sticky counters.
    const sim::Addr c = tword - task_words;
    if (c >= kShellCtlWords) throw std::out_of_range("Shell::mmioRead: offset beyond tables");
    switch (static_cast<std::uint32_t>(c)) {
      case 0: return lo32(late_sync_drops_);
      case 1: return lo32(params_.watchdog_timeout);
      case 2: return lo32(params_.watchdog_period);
      case 3: return lo32(faults_latched_);
      case 4: return lo32(stalls_latched_);
      default: return 0;
    }
  }
  const auto tix = static_cast<sim::TaskId>(tword / kTaskRowWords);
  const auto f = static_cast<std::uint32_t>(tword % kTaskRowWords);
  const TaskRow& t = tasks_.row(tix);
  switch (f) {
    case 0: return t.valid ? 1 : 0;
    case 1: return t.enabled ? 1 : 0;
    case 2: return t.budget_cycles;
    case 3: return t.task_info;
    case 4: return lo32(t.busy_cycles);
    case 5: return hi32(t.busy_cycles);
    case 6: return t.blocked ? 1 : 0;
    case 7: return lo32(t.gettask_count);
    case 8: return lo32(t.schedule_count);
    case 9: return lo32(t.switch_count);
    case 10: return lo32(t.blocked_cycles);
    case 11: return lo32(t.step_cycles.count());
    case 12: return static_cast<std::uint32_t>(t.step_cycles.mean());
    case 13: return static_cast<std::uint32_t>(t.step_cycles.max());
    case 14: return t.faulted ? 1 : 0;
    case 15: return static_cast<std::uint32_t>(t.fault_cause);
    case 16: return lo32(t.fault_cycle);
    case 17: return hi32(t.fault_cycle);
    case 18: return static_cast<std::uint32_t>(t.fault_row);
    case 19: return t.fault_count;
    default: return 0;
  }
}

void Shell::mmioWrite(sim::Addr offset, std::uint32_t value) {
  const sim::Addr word = offset / 4;
  const sim::Addr stream_words = static_cast<sim::Addr>(params_.max_streams) * kStreamRowWords;
  if (word < stream_words) {
    const auto rix = static_cast<std::uint32_t>(word / kStreamRowWords);
    const auto f = static_cast<std::uint32_t>(word % kStreamRowWords);
    StreamRow& r = streams_.row(rix);
    switch (f) {
      case 0: {
        const bool was_valid = r.valid;
        r.valid = value != 0;
        if (r.valid && !was_valid) {
          ports_[rix].cache = std::make_unique<StreamCache>(
              sim_, sram_, params_.cache_line_bytes, params_.cache_lines_per_port,
              static_cast<int>(params_.id));
        } else if (!r.valid && was_valid) {
          // Teardown: clearing the valid bit resets the whole row (config,
          // position, space accounting, counters) and releases the port
          // cache, so the row can be reprogrammed for a later application.
          r = StreamRow{};
          ports_[rix].cache.reset();
        }
        break;
      }
      case 1: r.task = static_cast<sim::TaskId>(value); break;
      case 2: r.port = static_cast<sim::PortId>(value); break;
      case 3: r.is_producer = value != 0; break;
      case 4: r.base = value; break;
      case 5: r.size = value; break;
      case 6: {
        // Space repair (recovery path): raising the space field of a live
        // row may make a best-guess-blocked task runnable, so wake the
        // scheduler. Configuration writes (valid bit still clear — the
        // Configurator programs valid last) must stay silent to keep the
        // no-fault event trace bit-identical.
        const bool wake = r.valid && value > r.space;
        r.space = value;
        if (wake) {
          sched_event_.notifyAll();
          space_event_.notifyAll();
        }
        break;
      }
      case 7: r.remote_shell = value; break;
      case 8: r.remote_row = value; break;
      case 27:
        r.stalled = value != 0;
        if (!r.stalled) r.stall_cycle = 0;
        break;
      default:
        throw std::invalid_argument("Shell::mmioWrite: read-only stream field");
    }
    return;
  }
  const sim::Addr tword = word - stream_words;
  const sim::Addr task_words = static_cast<sim::Addr>(params_.max_tasks) * kTaskRowWords;
  if (tword >= task_words) {
    const sim::Addr c = tword - task_words;
    if (c >= kShellCtlWords) throw std::out_of_range("Shell::mmioWrite: offset beyond tables");
    switch (static_cast<std::uint32_t>(c)) {
      case 0: late_sync_drops_ = value; break;  // sticky counter reset
      case 1: startWatchdog(value, params_.watchdog_period); break;
      case 2: params_.watchdog_period = value; break;
      default:
        throw std::invalid_argument("Shell::mmioWrite: read-only control field");
    }
    return;
  }
  const auto tix = static_cast<sim::TaskId>(tword / kTaskRowWords);
  const auto f = static_cast<std::uint32_t>(tword % kTaskRowWords);
  TaskRow& t = tasks_.row(tix);
  switch (f) {
    case 0: {
      const bool was_valid = t.valid;
      t.valid = value != 0;
      if (!t.valid && was_valid) {
        // Teardown: the slot returns to its power-on state, ready for a
        // later application's configuration.
        t = TaskRow{};
      }
      break;
    }
    case 1:
      t.enabled = value != 0;
      if (t.enabled) sched_event_.notifyAll();
      break;
    case 2: t.budget_cycles = value; break;
    case 3: t.task_info = value; break;
    case 6:
      // Writing 0 clears the best-guess blocked latch. After a mode
      // transition re-binds stream rows, a task may be parked on a space
      // threshold of a row that no longer exists; clearing the latch makes
      // the scheduler re-evaluate it against the new stream table.
      if (value == 0 && t.blocked) {
        t.blocked = false;
        t.blocked_row = -1;
        sched_event_.notifyAll();
      }
      break;
    case 14:
      // Writing 0 acknowledges and clears the fault register (the enable
      // bit is restored separately via field 1 — two-step recovery).
      if (value == 0) clearFault(tix, /*reenable=*/false);
      break;
    default:
      throw std::invalid_argument("Shell::mmioWrite: read-only task field");
  }
}

}  // namespace eclipse::shell
