#include "eclipse/shell/stream_cache.hpp"

#include <algorithm>
#include <stdexcept>

namespace eclipse::shell {

StreamCache::Line* StreamCache::find(sim::Addr line_addr) {
  for (auto& l : lines_) {
    if (l.state != State::Invalid && l.tag == line_addr) return &l;
  }
  return nullptr;
}

sim::Task<StreamCache::Line*> StreamCache::victim(StreamRow& row) {
  while (true) {
    Line* best = nullptr;
    for (auto& l : lines_) {
      if (l.state == State::Invalid) {
        co_return &l;
      }
      if (l.state == State::Valid && (best == nullptr || l.lru < best->lru)) best = &l;
    }
    if (best != nullptr) {
      if (best->dirty) {
        // Timing-only eviction flush: the SRAM already holds the current
        // bytes (views write through), so only the bus burst is charged.
        ++row.cache_flushes;
        co_await sram_.touchWrite(line_bytes_, client_);
        best->dirty = false;
      }
      best->state = State::Invalid;
      co_return best;
    }
    // Every line is pending a prefetch fill; wait for one to land.
    co_await event_.wait();
  }
}

sim::Task<StreamCache::Line*> StreamCache::acquire(StreamRow& row, sim::Addr line_addr,
                                                   bool whole_line_write) {
  while (true) {
    Line* l = find(line_addr);
    if (l == nullptr) break;
    if (l->state == State::Valid) {
      ++row.cache_hits;
      l->lru = ++lru_clock_;
      co_return l;
    }
    // Pending: the prefetch (or a concurrent fill) is in flight.
    co_await event_.wait();
  }
  ++row.cache_misses;
  Line* l = co_await victim(row);
  l->tag = line_addr;
  l->dirty = false;
  l->drop = false;
  l->lru = ++lru_clock_;
  if (whole_line_write) {
    // Write-allocate without fill: the whole line will be overwritten.
    auto d = lineData(l);
    std::fill(d.begin(), d.end(), 0);
    l->state = State::Valid;
    co_return l;
  }
  l->state = State::Pending;
  co_await sram_.read(line_addr, lineData(l), client_);
  l->state = l->drop ? State::Invalid : State::Valid;
  event_.notifyAll();
  if (l->state == State::Invalid) {
    // Invalidated while in flight; treat as a fresh miss.
    co_return co_await acquire(row, line_addr, whole_line_write);
  }
  co_return l;
}

sim::Task<void> StreamCache::touchRead(StreamRow& row, sim::Addr addr, std::size_t len,
                                       std::optional<sim::Addr> prefetch_addr) {
  std::size_t done = 0;
  while (done < len) {
    const sim::Addr line_addr = alignDown(addr + done);
    const std::size_t in_line = static_cast<std::size_t>(addr + done - line_addr);
    const std::size_t n = std::min(len - done, static_cast<std::size_t>(line_bytes_) - in_line);
    co_await acquire(row, line_addr, /*whole_line_write=*/false);
    done += n;
  }
  if (prefetch_addr.has_value()) startPrefetch(row, *prefetch_addr);
}

sim::Task<void> StreamCache::touchWrite(StreamRow& row, sim::Addr addr, std::size_t len) {
  std::size_t done = 0;
  while (done < len) {
    const sim::Addr line_addr = alignDown(addr + done);
    const std::size_t in_line = static_cast<std::size_t>(addr + done - line_addr);
    const std::size_t n = std::min(len - done, static_cast<std::size_t>(line_bytes_) - in_line);
    const bool whole = in_line == 0 && n == line_bytes_;
    Line* l = co_await acquire(row, line_addr, whole);
    l->dirty = true;
    done += n;
  }
}

sim::Task<void> StreamCache::flushRange(StreamRow& row, sim::Addr addr, std::uint64_t len) {
  if (len == 0) co_return;
  const sim::Addr first = alignDown(addr);
  const sim::Addr last = alignDown(addr + len - 1);
  for (auto& l : lines_) {
    if (l.state == State::Valid && l.dirty && l.tag >= first && l.tag <= last) {
      ++row.cache_flushes;
      co_await sram_.touchWrite(line_bytes_, client_);
      l.dirty = false;
    }
  }
}

void StreamCache::invalidateRange(StreamRow& row, sim::Addr addr, std::uint64_t len) {
  if (len == 0) return;
  const sim::Addr first = alignDown(addr);
  const sim::Addr last = alignDown(addr + len - 1);
  for (auto& l : lines_) {
    if (l.state == State::Invalid || l.tag < first || l.tag > last) continue;
    if (l.state == State::Valid) {
      if (l.dirty) {
        throw std::logic_error("StreamCache: invalidating a dirty line — window protocol violated");
      }
      l.state = State::Invalid;
      ++row.cache_invalidations;
    } else {
      // In-flight fill for a superseded window: drop the data on arrival.
      l.drop = true;
      ++row.cache_invalidations;
    }
  }
}

void StreamCache::startPrefetch(StreamRow& row, sim::Addr line_addr) {
  if (find(line_addr) != nullptr) return;
  ++row.prefetches;
  // Allocate the line synchronously (so a second prefetch of the same
  // address is suppressed) but fill it in a background process.
  Line* target = nullptr;
  for (auto& l : lines_) {
    if (l.state == State::Invalid) {
      target = &l;
      break;
    }
  }
  if (target == nullptr) {
    // No free line and eviction may need a timed flush; cheapest policy:
    // evict the LRU *clean* valid line, otherwise skip the prefetch.
    Line* best = nullptr;
    for (auto& l : lines_) {
      if (l.state == State::Valid && !l.dirty && (best == nullptr || l.lru < best->lru)) best = &l;
    }
    if (best == nullptr) return;
    target = best;
  }
  target->state = State::Pending;
  target->tag = line_addr;
  target->dirty = false;
  target->drop = false;
  target->lru = ++lru_clock_;
  sim_.spawn(prefetchTask(row, target), "prefetch");
}

sim::Task<void> StreamCache::prefetchTask(StreamRow& row, Line* line) {
  (void)row;
  co_await sram_.read(line->tag, lineData(line), client_);
  line->state = line->drop ? State::Invalid : State::Valid;
  event_.notifyAll();
}

}  // namespace eclipse::shell
