#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "eclipse/sim/stats.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::shell {

/// Cause codes latched in the per-task fault register (MMIO-readable).
/// Mirrors a hardware error-cause CSR: the first fault wins, later ones
/// only bump the count.
enum class FaultCause : std::uint32_t {
  None = 0,
  TaskException = 1,  ///< generic C++ exception escaped the processing step
  Bitstream = 2,      ///< media::BitstreamError — corrupted input data
  Protocol = 3,       ///< std::logic_error — five-primitive protocol misuse
  Watchdog = 4,       ///< progress watchdog expired (no space granted)
  Injected = 5,       ///< fault injector asked for an explicit task fault
  Hang = 6,           ///< injected task hang exceeded the watchdog
};

[[nodiscard]] constexpr const char* faultCauseName(FaultCause c) {
  switch (c) {
    case FaultCause::None: return "none";
    case FaultCause::TaskException: return "task-exception";
    case FaultCause::Bitstream: return "bitstream";
    case FaultCause::Protocol: return "protocol";
    case FaultCause::Watchdog: return "watchdog";
    case FaultCause::Injected: return "injected";
    case FaultCause::Hang: return "hang";
  }
  return "?";
}

/// Configuration of one access point written by the CPU (Section 5.1).
struct StreamConfig {
  sim::TaskId task = 0;
  sim::PortId port = 0;
  bool is_producer = false;       ///< output port (writes data) vs input port
  sim::Addr buffer_base = 0;      ///< stream FIFO base address in on-chip SRAM
  std::uint32_t buffer_bytes = 0; ///< FIFO size
  std::uint32_t remote_shell = 0; ///< shell holding the other access point
  std::uint32_t remote_row = 0;   ///< stream-table row at that shell
  std::uint32_t initial_space = 0;///< producer: buffer size; consumer: 0
};

/// One stream-table row: the local state of one access point onto a stream
/// FIFO, including the (maybe pessimistic) `space` field of Figure 7 and
/// the per-stream measurement counters of Section 5.4.
struct StreamRow {
  bool valid = false;
  sim::TaskId task = 0;
  sim::PortId port = 0;
  bool is_producer = false;
  sim::Addr base = 0;
  std::uint32_t size = 0;
  std::uint64_t pos = 0;       ///< absolute stream position of the access point
  std::uint32_t space = 0;     ///< known available data (consumer) or room (producer)
  std::uint32_t granted = 0;   ///< high-water mark of the granted access window
  std::uint32_t remote_shell = 0;
  std::uint32_t remote_row = 0;

  // Measurement fields (memory-mapped, CPU-readable).
  std::uint64_t bytes_transferred = 0;
  std::uint64_t getspace_calls = 0;
  std::uint64_t getspace_denied = 0;
  std::uint64_t putspace_calls = 0;
  std::uint64_t read_calls = 0;
  std::uint64_t write_calls = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_flushes = 0;
  std::uint64_t cache_invalidations = 0;
  std::uint64_t prefetches = 0;
  sim::Accumulator access_latency;  ///< cycles per Read/Write call (Section 5.4)
  sim::TimeSeries fill_series;      ///< sampled `space` (profiler)

  // Stall register (latched by the progress watchdog, CPU-readable):
  // the row's task waited on this access point with no space granted for
  // longer than the configured timeout.
  bool stalled = false;
  sim::Cycle stall_cycle = 0;  ///< cycle the stall was latched
};

/// Configuration of one task slot written by the CPU (Section 5.3).
struct TaskConfig {
  bool enabled = true;
  std::uint32_t budget_cycles = 2000;  ///< weighted round-robin budget
  std::uint32_t task_info = 0;         ///< parameter word returned by GetTask
};

/// One task-table row: configuration, scheduler state and measurements.
struct TaskRow {
  bool valid = false;
  bool enabled = false;
  std::uint32_t budget_cycles = 0;
  std::uint32_t task_info = 0;

  // Scheduler state ('best guess', Section 5.3): a task whose GetSpace was
  // denied is not rescheduled until the offending row has enough space.
  bool blocked = false;
  std::int32_t blocked_row = -1;
  std::uint32_t blocked_need = 0;
  sim::Cycle blocked_since = 0;  ///< cycle the current block started
  sim::Cycle budget_left = 0;

  // Fault register (Section 5.3 spirit: error cause latched per task slot,
  // readable over the PI-bus). First fault wins; `fault_count` tracks
  // repeats. Latching a fault clears `enabled` so siblings keep running.
  bool faulted = false;
  FaultCause fault_cause = FaultCause::None;
  sim::Cycle fault_cycle = 0;
  std::int32_t fault_row = -1;    ///< stream row involved, -1 if none
  std::uint32_t fault_count = 0;
  std::string fault_what;         ///< diagnostic text (not MMIO-visible)

  // Measurement fields.
  sim::Cycle busy_cycles = 0;
  sim::Cycle blocked_cycles = 0;
  std::uint64_t gettask_count = 0;
  std::uint64_t schedule_count = 0;  ///< times selected (incl. continuations)
  std::uint64_t switch_count = 0;    ///< times selected when another task ran before
  sim::Cycle last_selected_at = 0;
  sim::Accumulator step_cycles;  ///< processing-step durations (Section 5.3)
  sim::TimeSeries stall_series;  ///< sampled blocked state (profiler)
};

/// Fixed-capacity stream table with (task, port) lookup.
class StreamTable {
 public:
  explicit StreamTable(std::uint32_t capacity) : rows_(capacity) {}

  /// Installs a configuration in the first free row; returns the row index.
  std::uint32_t configure(const StreamConfig& cfg) {
    for (std::uint32_t i = 0; i < rows_.size(); ++i) {
      if (!rows_[i].valid) {
        StreamRow& r = rows_[i];
        r = StreamRow{};
        r.valid = true;
        r.task = cfg.task;
        r.port = cfg.port;
        r.is_producer = cfg.is_producer;
        r.base = cfg.buffer_base;
        r.size = cfg.buffer_bytes;
        r.space = cfg.initial_space;
        r.remote_shell = cfg.remote_shell;
        r.remote_row = cfg.remote_row;
        return i;
      }
    }
    throw std::runtime_error("StreamTable: no free row");
  }

  /// Finds the row for (task, port); throws if absent.
  [[nodiscard]] std::uint32_t lookup(sim::TaskId task, sim::PortId port) const {
    for (std::uint32_t i = 0; i < rows_.size(); ++i) {
      const StreamRow& r = rows_[i];
      if (r.valid && r.task == task && r.port == port) return i;
    }
    throw std::out_of_range("StreamTable: no row for task " + std::to_string(task) + " port " +
                            std::to_string(port));
  }

  [[nodiscard]] StreamRow& row(std::uint32_t i) { return rows_.at(i); }
  [[nodiscard]] const StreamRow& row(std::uint32_t i) const { return rows_.at(i); }
  [[nodiscard]] std::uint32_t capacity() const { return static_cast<std::uint32_t>(rows_.size()); }

 private:
  std::vector<StreamRow> rows_;
};

/// Fixed-capacity task table.
class TaskTable {
 public:
  explicit TaskTable(std::uint32_t capacity) : rows_(capacity) {}

  void configure(sim::TaskId task, const TaskConfig& cfg) {
    TaskRow& r = rows_.at(static_cast<std::size_t>(task));
    r = TaskRow{};
    r.valid = true;
    r.enabled = cfg.enabled;
    r.budget_cycles = cfg.budget_cycles;
    r.task_info = cfg.task_info;
  }

  [[nodiscard]] TaskRow& row(sim::TaskId task) { return rows_.at(static_cast<std::size_t>(task)); }
  [[nodiscard]] const TaskRow& row(sim::TaskId task) const {
    return rows_.at(static_cast<std::size_t>(task));
  }
  [[nodiscard]] std::uint32_t capacity() const { return static_cast<std::uint32_t>(rows_.size()); }

 private:
  std::vector<TaskRow> rows_;
};

}  // namespace eclipse::shell
