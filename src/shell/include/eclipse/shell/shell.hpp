#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "eclipse/mem/message_network.hpp"
#include "eclipse/mem/pi_bus.hpp"
#include "eclipse/mem/sram.hpp"
#include "eclipse/shell/params.hpp"
#include "eclipse/shell/stream_cache.hpp"
#include "eclipse/shell/tables.hpp"
#include "eclipse/shell/window_view.hpp"
#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/sim_event.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::shell {

/// The coprocessor shell — the paper's central contribution (Sections 3–5).
///
/// One shell instance fronts one coprocessor and implements the five-
/// primitive task-level interface (GetTask / Read / Write / GetSpace /
/// PutSpace) plus all generic infrastructure behind it:
///  * multi-tasking: weighted round-robin task scheduling with cycle
///    budgets and 'best guess' readiness (Section 5.3),
///  * stream synchronization: local `space` accounting with putspace
///    messages to the remote access point's shell (Section 5.1, Figure 7),
///  * data transport: cyclic FIFO addressing into the shared SRAM through
///    per-port stream caches with sync-driven explicit coherency and
///    prefetching (Section 5.2),
///  * performance measurement: per-stream and per-task counters plus a
///    sampling process, all CPU-readable over the PI-bus (Section 5.4).
///
/// All primitives are called by the coprocessor (the coprocessor has the
/// initiative); they are coroutines whose completion time models the
/// master-slave handshake and any memory traffic incurred.
class Shell {
 public:
  Shell(sim::Simulator& sim, const ShellParams& params, mem::SharedSram& sram,
        mem::MessageNetwork& network);

  Shell(const Shell&) = delete;
  Shell& operator=(const Shell&) = delete;

  // ------------------------------------------------------------------
  // Task-level interface (Section 3.2)
  // ------------------------------------------------------------------

  /// GetTask: returns the next task to execute and its parameter word.
  /// Suspends (coprocessor idles) while no configured task is runnable.
  sim::Task<GetTaskResult> getTask();

  /// GetSpace: inquires whether `n_bytes` of data (input port) or room
  /// (output port) are available ahead of the access point. Purely local.
  sim::Task<bool> getSpace(sim::TaskId task, sim::PortId port, std::uint32_t n_bytes);

  /// PutSpace: commits `n_bytes` — advances the access point, flushes any
  /// dirty cache lines in the committed window, then signals the remote
  /// access point's shell.
  sim::Task<void> putSpace(sim::TaskId task, sim::PortId port, std::uint32_t n_bytes);

  /// Acquires a zero-copy read view of [offset, offset+n) within the
  /// granted window of an input port. Charged exactly the cycle costs of a
  /// read() of the same size (port handshake, cache hit/miss walk,
  /// prefetch); the returned view points directly into the stream FIFO in
  /// SRAM. view.commit() performs PutSpace(offset + n).
  sim::Task<WindowView> acquireRead(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                                    std::size_t n);

  /// Acquires a zero-copy write view of [offset, offset+n) within the
  /// granted window of an output port; same cycle costs as a write() of
  /// the same size. Bytes stored through the view land in the stream FIFO
  /// immediately (write-through); the cache replays the dirty-line /
  /// flush timing. view.commit() performs PutSpace(offset + n).
  sim::Task<WindowView> acquireWrite(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                                     std::size_t n);

  /// Read: copies from the stream at [offset, offset+out.size()) within
  /// the granted window into `out`. Input ports only. (Adapter over
  /// acquireRead — same simulated timing.)
  sim::Task<void> read(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                       std::span<std::uint8_t> out);

  /// Write: copies `in` into the stream window at `offset`. Output ports
  /// only. (Adapter over acquireWrite — same simulated timing.)
  sim::Task<void> write(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                        std::span<const std::uint8_t> in);

  /// Reusable per-port scratch buffer for gathering the rare fragmented
  /// (buffer-wrapping) view into contiguous bytes (used by packet_io).
  [[nodiscard]] std::vector<std::uint8_t>& portScratch(sim::TaskId task, sim::PortId port) {
    return ports_[streams_.lookup(task, port)].scratch;
  }

  /// Convenience for blocking-coprocessor designs (Section 4.2 alternative:
  /// "let the coprocessor wait for the space to arrive"): suspends until a
  /// GetSpace of `n_bytes` succeeds.
  sim::Task<void> waitSpace(sim::TaskId task, sim::PortId port, std::uint32_t n_bytes);

  // ------------------------------------------------------------------
  // Configuration (CPU side)
  // ------------------------------------------------------------------

  void configureTask(sim::TaskId task, const TaskConfig& cfg);
  std::uint32_t configureStream(const StreamConfig& cfg);
  void setTaskEnabled(sim::TaskId task, bool enabled);

  // ------------------------------------------------------------------
  // Fault containment (tentpole of the robustness PR)
  // ------------------------------------------------------------------

  /// Latches a fault into the task's fault register: records cause, cycle,
  /// stream row and diagnostic text, clears the enable bit (so the
  /// scheduler skips the task while siblings keep running) and notifies
  /// fault observers. The first fault wins; repeats only bump fault_count.
  void latchFault(sim::TaskId task, FaultCause cause, std::int32_t row,
                  const std::string& what);

  /// Clears a latched fault (CPU recovery path); optionally re-enables.
  void clearFault(sim::TaskId task, bool reenable);

  /// Observer called on each latchFault (task id, latched row snapshot).
  /// Returns an id usable with removeFaultObserver.
  using FaultObserver = std::function<void(sim::TaskId, const TaskRow&)>;
  int addFaultObserver(FaultObserver fn);
  void removeFaultObserver(int id);

  /// Arms the per-stream progress watchdog: a periodic scan latches a
  /// stall (StreamRow.stalled + task FaultCause::Watchdog) when a blocked
  /// task has waited `timeout` cycles with no space granted. timeout 0
  /// stops the watchdog after the current period.
  void startWatchdog(sim::Cycle timeout, sim::Cycle period = 0);
  [[nodiscard]] sim::Cycle watchdogTimeout() const { return params_.watchdog_timeout; }

  /// Sticky counter of putspace messages that arrived for an unconfigured
  /// stream row (e.g. a message in flight across teardown) and were
  /// dropped instead of tearing down the simulation.
  [[nodiscard]] std::uint64_t lateSyncDrops() const { return late_sync_drops_; }
  [[nodiscard]] std::uint64_t faultsLatched() const { return faults_latched_; }
  [[nodiscard]] std::uint64_t stallsLatched() const { return stalls_latched_; }

  /// Maps the stream and task tables as 32-bit registers on the PI-bus at
  /// `base`. The window size is mmioWindowBytes().
  void mapMmio(mem::PiBus& bus, sim::Addr base);
  [[nodiscard]] sim::Addr mmioWindowBytes() const;

  /// Direct register access (also used by the PI-bus mapping).
  [[nodiscard]] std::uint32_t mmioRead(sim::Addr offset) const;
  void mmioWrite(sim::Addr offset, std::uint32_t value);

  // ------------------------------------------------------------------
  // Measurement / introspection
  // ------------------------------------------------------------------

  [[nodiscard]] const ShellParams& params() const { return params_; }
  [[nodiscard]] const std::string& name() const { return params_.name; }
  [[nodiscard]] std::uint32_t id() const { return params_.id; }

  /// Shard (lane) this shell executes on in a sharded simulation. Set by
  /// the app-layer partitioner before start; everything the shell spawns
  /// (its coprocessor control loop, watchdog, profiler, cache prefetches)
  /// runs on this lane.
  void setShard(sim::ShardId shard) { shard_ = shard; }
  [[nodiscard]] sim::ShardId shard() const { return shard_; }
  [[nodiscard]] StreamTable& streams() { return streams_; }
  [[nodiscard]] const StreamTable& streams() const { return streams_; }
  [[nodiscard]] TaskTable& tasks() { return tasks_; }
  [[nodiscard]] const TaskTable& tasks() const { return tasks_; }

  [[nodiscard]] sim::Cycle idleCycles() const { return idle_cycles_; }
  [[nodiscard]] std::uint64_t taskSwitches() const { return task_switches_; }
  [[nodiscard]] std::uint64_t syncMessagesReceived() const { return sync_messages_rx_; }

  /// Coprocessor busy fraction over `elapsed` cycles (busy = not waiting
  /// inside GetTask).
  [[nodiscard]] double utilization(sim::Cycle elapsed) const;

  /// Starts the sampling process (requires params.profiler_period > 0).
  void startProfiler();
  void stopProfiler() { profiling_ = false; }

  /// Returns the shell to its just-constructed scheduler state so the
  /// instance can be reused for a fresh set of control-loop processes
  /// (farm worker recycling). Only sound after every task/stream row has
  /// been invalidated (teardown) and the owning simulator's
  /// destroyProcesses() ran: the parked GetTask/waitSpace waiters recorded
  /// in the shell's events are dangling handles then. Measurement counters
  /// (idle cycles, task switches, latched-fault totals) are preserved —
  /// they are cumulative statistics, not scheduler state.
  void recycle();

 private:
  struct Port {
    std::unique_ptr<StreamCache> cache;
    std::vector<std::uint8_t> scratch;  // fragmented-view gather fallback
  };

  /// Shared timing + view construction behind acquireRead/acquireWrite.
  sim::Task<WindowView> acquire(sim::TaskId task, sim::PortId port, std::uint64_t offset,
                                std::size_t n, bool writing);

  void onSyncMessage(const mem::SyncMessage& msg);

  /// True when the task cannot run because a previously denied GetSpace is
  /// still unsatisfied; self-clears once space arrives (best guess).
  [[nodiscard]] bool blockedNow(TaskRow& t);

  /// Splits the cyclic window [pos_from, pos_from+len) of `row` into at
  /// most two linear SRAM segments and invokes fn(addr, seg_len, seg_off).
  template <typename Fn>
  void forEachSegment(const StreamRow& row, std::uint64_t pos_from, std::uint64_t len, Fn&& fn) const {
    std::uint64_t done = 0;
    while (done < len) {
      const std::uint64_t p = pos_from + done;
      const std::uint64_t off = p % row.size;
      const std::uint64_t seg = std::min<std::uint64_t>(len - done, row.size - off);
      fn(row.base + off, seg, done);
      done += seg;
    }
  }

  sim::Task<void> profilerProcess();
  sim::Task<void> watchdogProcess();

  /// One watchdog scan: latches stalls for tasks blocked past the timeout.
  void scanStalls();

  sim::Simulator& sim_;
  ShellParams params_;
  sim::ShardId shard_ = 0;
  mem::SharedSram& sram_;
  mem::MessageNetwork& network_;
  StreamTable streams_;
  TaskTable tasks_;
  std::vector<Port> ports_;  // parallel to stream rows

  // Scheduler state.
  sim::TaskId current_task_ = sim::kNoTask;
  std::uint32_t rr_index_ = 0;
  sim::Cycle last_gettask_return_ = 0;
  sim::SimEvent sched_event_;
  sim::SimEvent space_event_;
  sim::Cycle idle_cycles_ = 0;
  std::optional<sim::Cycle> idle_since_;
  std::uint64_t task_switches_ = 0;
  std::uint64_t sync_messages_rx_ = 0;
  bool profiling_ = false;

  // Fault containment state.
  std::uint64_t late_sync_drops_ = 0;
  std::uint64_t faults_latched_ = 0;
  std::uint64_t stalls_latched_ = 0;
  bool watchdog_running_ = false;
  std::vector<std::pair<int, FaultObserver>> fault_observers_;
  int next_observer_id_ = 0;
};

}  // namespace eclipse::shell
