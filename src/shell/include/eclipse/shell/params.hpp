#pragma once

#include <cstdint>
#include <string>

#include "eclipse/sim/types.hpp"

namespace eclipse::shell {

/// Parameters of the shell template (Section 3.1: "the architecture of the
/// shell itself is designed as a parameterized template"). Shell instances
/// with coprocessor-specific settings are derived from this.
struct ShellParams {
  std::uint32_t id = 0;       ///< unique shell id on the message network
  std::string name = "shell";

  // Coprocessor-side interface.
  std::uint32_t port_width_bytes = 16;  ///< data width of the read/write interface

  // Stream caches (Section 5.2).
  std::uint32_t cache_line_bytes = 64;
  std::uint32_t cache_lines_per_port = 2;
  bool prefetch = true;  ///< prefetch next line on miss / GetSpace

  // Primitive handshake latencies (master-slave handshake, Section 3.2).
  sim::Cycle sync_latency = 2;     ///< GetSpace / PutSpace
  sim::Cycle gettask_latency = 2;  ///< GetTask
  sim::Cycle io_latency = 1;       ///< Read / Write call overhead

  // Scheduler (Section 5.3). `best_guess` enables readiness prediction
  // from denied GetSpace requests; disabling it yields a naive round-robin
  // that keeps re-selecting blocked tasks (ablation for ref [13]).
  bool best_guess = true;

  // Table capacities.
  std::uint32_t max_tasks = 8;
  std::uint32_t max_streams = 16;

  // Profiler sampling period in cycles; 0 disables sampling (Section 5.4).
  sim::Cycle profiler_period = 0;

  // Progress watchdog: latch a stall when a blocked task has had no space
  // granted on its blocking row for `watchdog_timeout` cycles, scanning
  // every `watchdog_period` cycles. timeout 0 disables the watchdog (the
  // default — no events are scheduled and timing stays bit-identical).
  sim::Cycle watchdog_period = 256;
  sim::Cycle watchdog_timeout = 0;
};

/// Result of the GetTask primitive: the selected task and the parameter
/// word for the function that task should perform (e.g. one bit selecting
/// forward or inverse DCT).
struct GetTaskResult {
  sim::TaskId task = sim::kNoTask;
  std::uint32_t task_info = 0;
};

}  // namespace eclipse::shell
