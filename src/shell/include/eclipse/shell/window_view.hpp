#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::shell {

class Shell;

/// Zero-copy scatter-gather view into a granted stream window.
///
/// Returned by Shell::acquireRead / Shell::acquireWrite. The chunks point
/// directly at the stream FIFO's backing bytes in the shared SRAM, split
/// into at most two segments where the cyclic buffer wraps. All simulated
/// cycle costs (port handshake, cache fills, flushes, prefetches) were
/// charged by the acquire call, so touching the bytes through the view is
/// free host work — the paper's observation 1 (data inside a granted
/// window is private to the access point) makes the view semantically
/// exact.
///
/// Lifetime rules (see DESIGN.md §7):
///  * a write view is valid until its window is committed (PutSpace);
///  * a read view obtained without committing (peek) is valid until the
///    holder itself commits the window;
///  * a read view whose bytes were already committed (e.g. packet_io
///    tryRead) is valid only until the holder's next suspension point —
///    after the putspace message is processed the producer may reclaim
///    and overwrite the region. Copy (or re-serialise) anything needed
///    across a co_await.
class WindowView {
 public:
  struct Chunk {
    std::uint8_t* data = nullptr;
    std::size_t size = 0;
  };

  WindowView() = default;

  /// Total bytes spanned by the view.
  [[nodiscard]] std::size_t bytes() const {
    std::size_t n = 0;
    for (int i = 0; i < n_chunks_; ++i) n += chunks_[i].size;
    return n;
  }

  /// The (at most two) linear segments, in stream order.
  [[nodiscard]] std::span<const Chunk> chunks() const {
    return {chunks_.data(), static_cast<std::size_t>(n_chunks_)};
  }

  /// True when the view is a single linear segment (or empty).
  [[nodiscard]] bool contiguous() const { return n_chunks_ <= 1; }

  /// Direct span over a contiguous view; throws on a fragmented one.
  [[nodiscard]] std::span<std::uint8_t> span() const {
    if (n_chunks_ > 1) {
      throw std::logic_error("WindowView::span: view wraps the cyclic buffer");
    }
    return n_chunks_ == 0 ? std::span<std::uint8_t>{}
                          : std::span<std::uint8_t>{chunks_[0].data, chunks_[0].size};
  }

  /// Gathers the view into `out` (out.size() must equal bytes()).
  void copyTo(std::span<std::uint8_t> out) const {
    if (out.size() != bytes()) {
      throw std::invalid_argument("WindowView::copyTo: size mismatch");
    }
    std::size_t done = 0;
    for (int i = 0; i < n_chunks_; ++i) {
      std::memcpy(out.data() + done, chunks_[i].data, chunks_[i].size);
      done += chunks_[i].size;
    }
  }

  /// Scatters `in` into the view (in.size() must equal bytes()).
  void copyFrom(std::span<const std::uint8_t> in) {
    if (in.size() != bytes()) {
      throw std::invalid_argument("WindowView::copyFrom: size mismatch");
    }
    std::size_t done = 0;
    for (int i = 0; i < n_chunks_; ++i) {
      std::memcpy(chunks_[i].data, in.data() + done, chunks_[i].size);
      done += chunks_[i].size;
    }
  }

  /// Contiguous read access: the view's own bytes when linear, otherwise a
  /// gathered copy in `scratch` (the rare fragmented-view fallback).
  [[nodiscard]] std::span<const std::uint8_t> gather(std::vector<std::uint8_t>& scratch) const {
    if (n_chunks_ <= 1) {
      return n_chunks_ == 0
                 ? std::span<const std::uint8_t>{}
                 : std::span<const std::uint8_t>{chunks_[0].data, chunks_[0].size};
    }
    scratch.resize(bytes());
    copyTo(scratch);
    return scratch;
  }

  /// Commits the window this view was acquired in: PutSpace of every byte
  /// from the access point up to the end of the view (offset + length).
  /// The view must not be used afterwards.
  sim::Task<void> commit();

  /// Bytes a commit() would PutSpace (the view's offset plus its length).
  [[nodiscard]] std::uint32_t commitBytes() const { return commit_bytes_; }

 private:
  friend class Shell;

  std::array<Chunk, 2> chunks_{};
  int n_chunks_ = 0;
  Shell* shell_ = nullptr;
  sim::TaskId task_ = 0;
  sim::PortId port_ = 0;
  std::uint32_t commit_bytes_ = 0;
};

}  // namespace eclipse::shell
