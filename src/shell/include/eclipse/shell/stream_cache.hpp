#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "eclipse/mem/sram.hpp"
#include "eclipse/shell/tables.hpp"
#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/sim_event.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::shell {

/// Per-access-point stream cache (Section 5.2).
///
/// A small, address-tagged, write-back cache between one coprocessor port
/// and the shared on-chip SRAM. There is no snooping: coherency is driven
/// explicitly by the synchronization events —
///   * GetSpace extends the access window  -> invalidate overlapping lines,
///   * PutSpace shrinks the window         -> flush overlapping dirty lines
///     *before* the putspace message goes out.
/// Within the granted window the data is private (observation 1), so plain
/// hits need no communication at all.
///
/// Since the zero-copy transport refactor the cache is a pure *timing*
/// model: the functional bytes live in the SRAM's Storage and move through
/// WindowViews, while touchRead/touchWrite replay exactly the hit / miss /
/// fill / flush traffic the copying cache performed — fills still read the
/// SRAM (timed, into the flat backing), flushes and evictions charge the
/// same write-bus burst without moving data (the SRAM already holds the
/// current bytes; a data flush would overwrite them with a stale mirror).
///
/// Prefetching: a read may carry a line-aligned prefetch hint (computed by
/// the shell, limited to the granted window). The prefetch fetches in the
/// background; a later access to a pending line waits for its completion,
/// which is how prefetch latency hiding shows up in the timing.
class StreamCache {
 public:
  StreamCache(sim::Simulator& sim, mem::SharedSram& sram, std::uint32_t line_bytes,
              std::uint32_t n_lines, int client_id)
      : sim_(sim),
        sram_(sram),
        line_bytes_(line_bytes),
        client_(client_id),
        event_(sim),
        lines_(n_lines),
        backing_(static_cast<std::size_t>(line_bytes) * n_lines) {}

  StreamCache(const StreamCache&) = delete;
  StreamCache& operator=(const StreamCache&) = delete;

  /// Timing of a read of `len` bytes at SRAM address `addr` through the
  /// cache (per-line hit/miss walk; misses fill from SRAM over the read
  /// bus). `prefetch_addr`, when set, is a line-aligned address to fetch
  /// in the background after servicing the read.
  sim::Task<void> touchRead(StreamRow& row, sim::Addr addr, std::size_t len,
                            std::optional<sim::Addr> prefetch_addr);

  /// Timing of a write of `len` bytes at SRAM address `addr`; write-back
  /// with write-allocate (read-modify-write fetch for partial lines).
  sim::Task<void> touchWrite(StreamRow& row, sim::Addr addr, std::size_t len);

  /// Flushes dirty lines overlapping [addr, addr+len): charges the write
  /// burst per line (timing-only; SRAM is current) and clears dirty bits.
  sim::Task<void> flushRange(StreamRow& row, sim::Addr addr, std::uint64_t len);

  /// Drops (clean) lines overlapping [addr, addr+len). Dirty lines in the
  /// range indicate a protocol violation and throw.
  void invalidateRange(StreamRow& row, sim::Addr addr, std::uint64_t len);

  /// Starts a background fetch of the line at `line_addr` (no-op if the
  /// line is already present or no clean line can host it).
  void startPrefetch(StreamRow& row, sim::Addr line_addr);

  [[nodiscard]] std::uint32_t lineBytes() const { return line_bytes_; }
  [[nodiscard]] std::uint32_t lineCount() const { return static_cast<std::uint32_t>(lines_.size()); }

 private:
  enum class State : std::uint8_t { Invalid, Pending, Valid };

  /// Line metadata; the data lives in the flat `backing_` allocation at
  /// index * line_bytes_.
  struct Line {
    State state = State::Invalid;
    sim::Addr tag = 0;  // line-aligned SRAM address
    bool dirty = false;
    bool drop = false;  // invalidated while a fill was in flight
    std::uint64_t lru = 0;
  };

  [[nodiscard]] sim::Addr alignDown(sim::Addr a) const { return a / line_bytes_ * line_bytes_; }

  /// The backing slice of one line.
  [[nodiscard]] std::span<std::uint8_t> lineData(const Line* l) {
    const auto idx = static_cast<std::size_t>(l - lines_.data());
    return {backing_.data() + idx * line_bytes_, line_bytes_};
  }

  /// Finds the line holding `line_addr` in any non-Invalid state.
  Line* find(sim::Addr line_addr);

  /// Returns a line for `line_addr`, fetching from SRAM unless
  /// `whole_line_write` allows allocation without a fill. Waits on pending
  /// lines. Accounts hits/misses into `row`.
  sim::Task<Line*> acquire(StreamRow& row, sim::Addr line_addr, bool whole_line_write);

  /// Picks an eviction victim (LRU among Valid lines), flushing if dirty.
  /// Suspends while every line is Pending.
  sim::Task<Line*> victim(StreamRow& row);

  /// Background prefetch fill of one line.
  sim::Task<void> prefetchTask(StreamRow& row, Line* line);

  sim::Simulator& sim_;
  mem::SharedSram& sram_;
  std::uint32_t line_bytes_;
  int client_;
  sim::SimEvent event_;
  std::vector<Line> lines_;
  std::vector<std::uint8_t> backing_;  // all line data, contiguous
  std::uint64_t lru_clock_ = 0;
};

}  // namespace eclipse::shell
