#include "eclipse/farm/farm.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>

namespace eclipse::farm {

namespace {

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Farm::Farm(FarmOptions options)
    : cache_(options.cache ? std::move(options.cache) : std::make_shared<WorkloadCache>()),
      queue_(options.queue_capacity),
      started_(std::chrono::steady_clock::now()) {
  int n = options.workers;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  // Split the lane-thread budget evenly among the workers: a job may use
  // at most this many shard lanes, so workers x lanes stays within budget.
  int lane_threads = options.lane_threads;
  if (lane_threads <= 0) lane_threads = static_cast<int>(std::thread::hardware_concurrency());
  if (lane_threads <= 0) lane_threads = 1;
  const auto max_lanes = static_cast<std::uint32_t>(std::max(1, lane_threads / n));
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(
        i, queue_, *cache_, max_lanes, [this](const JobResult& r) { onComplete(r); }));
  }
}

Farm::~Farm() {
  close();
  for (auto& w : workers_) w->join();
}

PendingJob Farm::makePending(Job&& job) {
  PendingJob pj;
  pj.job = std::move(job);
  pj.submitted = std::chrono::steady_clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pj.id = next_id_++;
    ++submitted_;
  }
  return pj;
}

SubmitTicket Farm::submit(Job job) {
  PendingJob pj = makePending(std::move(job));
  std::future<JobResult> fut = pj.promise.get_future();
  // Count the acceptance before the push: once pushed, a worker may
  // deliver immediately, and drain() relies on accepted_ >= delivered_.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
  }
  const Admission a = queue_.tryPush(std::move(pj));
  if (a != Admission::Accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    --accepted_;
    ++rejected_;
  }
  SubmitTicket t;
  t.admission = a;
  if (a == Admission::Accepted) t.result = std::move(fut);
  return t;
}

std::future<JobResult> Farm::submitWait(Job job) {
  PendingJob pj = makePending(std::move(job));
  std::future<JobResult> fut = pj.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
  }
  if (!queue_.waitPush(std::move(pj))) {
    std::lock_guard<std::mutex> lock(mu_);
    --accepted_;
    ++rejected_;
    throw std::runtime_error("Farm: submission while shutting down");
  }
  return fut;
}

std::vector<std::future<JobResult>> Farm::submitBatch(std::vector<Job> jobs) {
  std::vector<std::future<JobResult>> futs;
  futs.reserve(jobs.size());
  for (Job& j : jobs) futs.push_back(submitWait(std::move(j)));
  return futs;
}

void Farm::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return delivered_ >= accepted_; });
}

void Farm::close() { queue_.close(); }

void Farm::onComplete(const JobResult& r) {
  std::lock_guard<std::mutex> lock(mu_);
  ++delivered_;
  r.status == JobStatus::Completed ? ++completed_ : ++failed_;
  latencies_ms_.push_back(r.latency_ms);
  if (delivered_ >= accepted_) drained_.notify_all();
}

FarmMetrics Farm::metrics() const {
  FarmMetrics m;
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(mu_);
    m.submitted = submitted_;
    m.accepted = accepted_;
    m.rejected = rejected_;
    m.completed = completed_;
    m.failed = failed_;
    lat = latencies_ms_;
  }
  m.queue_depth = queue_.depth();
  m.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - started_).count();
  const double delivered = static_cast<double>(m.completed + m.failed);
  m.jobs_per_s = m.elapsed_s > 0 ? delivered / m.elapsed_s : 0.0;
  std::sort(lat.begin(), lat.end());
  m.p50_ms = percentile(lat, 50);
  m.p95_ms = percentile(lat, 95);
  m.p99_ms = percentile(lat, 99);
  m.workers.reserve(workers_.size());
  for (const auto& w : workers_) m.workers.push_back(w->stats());
  return m;
}

}  // namespace eclipse::farm
