#include "eclipse/farm/farm.hpp"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

namespace eclipse::farm {

namespace {

using Clock = std::chrono::steady_clock;

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double retryBackoffMs(const RetryPolicy& p, std::uint64_t key, int attempt) {
  if (p.backoff_ms <= 0.0) return 0.0;
  double d = p.backoff_ms;
  for (int a = 2; a < attempt; ++a) {
    d *= p.backoff_multiplier;
    if (p.max_backoff_ms > 0.0 && d >= p.max_backoff_ms) break;
  }
  if (p.max_backoff_ms > 0.0) d = std::min(d, p.max_backoff_ms);
  // Jitter from a hash of (key, attempt): wall-clock-free, so a rerun of
  // the same job list spreads its retries identically.
  const std::uint64_t h = splitmix64(key ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(attempt)));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
  d *= 1.0 + p.jitter_frac * u;
  if (p.max_backoff_ms > 0.0) d = std::min(d, p.max_backoff_ms * (1.0 + p.jitter_frac));
  return d;
}

Farm::Farm(FarmOptions options)
    : cache_(options.cache ? std::move(options.cache) : std::make_shared<WorkloadCache>()),
      queue_(options.queue_capacity),
      started_(Clock::now()) {
  int n = options.workers;
  if (n <= 0) n = static_cast<int>(std::thread::hardware_concurrency());
  if (n <= 0) n = 1;
  // Split the lane-thread budget evenly among the workers: a job may use
  // at most this many shard lanes, so workers x lanes stays within budget.
  int lane_threads = options.lane_threads;
  if (lane_threads <= 0) lane_threads = static_cast<int>(std::thread::hardware_concurrency());
  if (lane_threads <= 0) lane_threads = 1;
  max_lanes_ = static_cast<std::uint32_t>(std::max(1, lane_threads / n));
  supervisor_ = std::make_unique<Supervisor>(*this);
  std::lock_guard<std::mutex> lock(workers_mu_);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>(i, queue_, *cache_, max_lanes_, finishFn()));
  }
}

Worker::FinishFn Farm::finishFn() {
  // The worker calls this only after winning the completion claim, so it
  // owns fl->pj outright (promise included) and may move from it.
  return [this](std::shared_ptr<InFlight> fl, JobResult r) {
    disposition(std::move(fl->pj), std::move(r));
  };
}

Farm::~Farm() {
  close();
  // Join every worker thread — including zombies the supervisor may still
  // be minting while we drain. Two passes: snapshot-join (threads may be
  // mid-hang), then stop the supervisor (no further replacement) and join
  // whatever it added in between.
  for (int pass = 0; pass < 2; ++pass) {
    std::vector<Worker*> snapshot;
    {
      std::lock_guard<std::mutex> lock(workers_mu_);
      for (auto& w : workers_) snapshot.push_back(w.get());
      for (auto& w : zombies_) snapshot.push_back(w.get());
    }
    for (Worker* w : snapshot) w->join();
    if (pass == 0) supervisor_->shutdown();  // flushes staged retries terminally
  }
}

int Farm::workerCount() const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  return static_cast<int>(workers_.size());
}

PendingJob Farm::makePending(Job&& job) {
  if (job.armsSupervision()) supervisor_->ensureRunning();
  PendingJob pj;
  pj.job = std::move(job);
  pj.submitted = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    pj.id = next_id_++;
    ++submitted_;
  }
  return pj;
}

SubmitTicket Farm::submit(Job job) {
  PendingJob pj = makePending(std::move(job));
  std::future<JobResult> fut = pj.promise.get_future();
  // Count the acceptance before the push: once pushed, a worker may
  // deliver immediately, and drain() relies on accepted_ >= delivered_.
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
  }
  const Admission a = queue_.tryPush(std::move(pj));
  if (a != Admission::Accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    --accepted_;
    ++rejected_;
  }
  SubmitTicket t;
  t.admission = a;
  if (a == Admission::Accepted) t.result = std::move(fut);
  return t;
}

std::future<JobResult> Farm::submitWait(Job job) {
  PendingJob pj = makePending(std::move(job));
  std::future<JobResult> fut = pj.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
  }
  if (!queue_.waitPush(std::move(pj))) {
    std::lock_guard<std::mutex> lock(mu_);
    --accepted_;
    ++rejected_;
    throw std::runtime_error("Farm: submission while shutting down");
  }
  return fut;
}

SubmitTicket Farm::submitFor(Job job, std::chrono::milliseconds timeout) {
  PendingJob pj = makePending(std::move(job));
  std::future<JobResult> fut = pj.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
  }
  const Admission a = queue_.waitPushFor(std::move(pj), timeout);
  if (a != Admission::Accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    --accepted_;
    ++rejected_;
  }
  SubmitTicket t;
  t.admission = a;
  if (a == Admission::Accepted) t.result = std::move(fut);
  return t;
}

SubmitTicket Farm::submitCallback(Job job, std::function<void(const JobResult&)> on_result) {
  PendingJob pj = makePending(std::move(job));
  pj.on_terminal = std::move(on_result);
  std::future<JobResult> fut = pj.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++accepted_;
  }
  const Admission a = queue_.tryPush(std::move(pj));
  if (a != Admission::Accepted) {
    std::lock_guard<std::mutex> lock(mu_);
    --accepted_;
    ++rejected_;
  }
  SubmitTicket t;
  t.admission = a;
  if (a == Admission::Accepted) t.result = std::move(fut);
  return t;
}

std::vector<std::future<JobResult>> Farm::submitBatch(std::vector<Job> jobs) {
  std::vector<std::future<JobResult>> futs;
  futs.reserve(jobs.size());
  for (Job& j : jobs) futs.push_back(submitWait(std::move(j)));
  return futs;
}

void Farm::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drained_.wait(lock, [&] { return delivered_ >= accepted_; });
}

void Farm::close() { queue_.close(); }

void Farm::disposition(PendingJob&& pj, JobResult&& r) {
  r.id = pj.id;
  r.name = pj.job.name;
  r.tenant = pj.job.tenant;
  r.attempts = pj.attempt;

  const int max_attempts = std::max(1, pj.job.retry.max_attempts);
  const bool quarantine = r.cause == JobError::WorkerLost && pj.worker_kills >= 2;
  const bool retryable = r.status != JobStatus::Completed && retryableError(r.cause) &&
                         pj.attempt < max_attempts && !quarantine;

  if (retryable && !queue_.closed()) {
    AttemptRecord a;
    a.attempt = pj.attempt;
    a.status = r.status;
    a.cause = r.cause;
    a.sim_cycles = r.sim_cycles;
    a.sim_events = r.sim_events;
    a.worker = r.worker;
    pj.history.push_back(a);
    pj.attempt += 1;
    if (pj.job.retry.demote_lane) pj.run_priority = demoted(pj.lane());
    const double delay = retryBackoffMs(pj.job.retry, pj.job.seed ^ pj.id, pj.attempt);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++retried_;
    }
    supervisor_->schedule(std::move(pj), delay);
    return;
  }

  if (quarantine) {
    r.status = JobStatus::Quarantined;
    if (!r.error.empty()) r.error += "; ";
    r.error += "quarantined: hung " + std::to_string(pj.worker_kills) + " workers";
  }
  deliverTerminal(std::move(pj), std::move(r));
}

void Farm::deliverTerminal(PendingJob&& pj, JobResult&& r) {
  r.attempts_log = std::move(pj.history);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++delivered_;
    if (r.status == JobStatus::Completed) {
      ++completed_;
      if (r.attempts > 1) ++retry_succeeded_;
    } else {
      ++failed_;
      switch (r.cause) {
        case JobError::DeadlineExceeded: ++deadline_exceeded_; break;
        case JobError::FaultLatched: ++fault_latched_; break;
        default: break;
      }
      if (r.status == JobStatus::Quarantined) {
        ++quarantined_count_;
        quarantine_.push_back(QuarantineRecord{r.id, r.name, r.attempts, pj.worker_kills, r.error});
      }
    }
    latencies_ms_.push_back(r.latency_ms);
    if (delivered_ >= accepted_) drained_.notify_all();
  }
  // The terminal hook (submitCallback) fires after metrics, outside every
  // farm lock (it may re-enter submit*), and before the future resolves.
  if (pj.on_terminal) {
    try {
      pj.on_terminal(r);
    } catch (...) {
      // A throwing result hook must not strand the promise.
    }
  }
  pj.promise.set_value(std::move(r));
}

Admission Farm::readmit(PendingJob& pj) { return queue_.tryPush(std::move(pj)); }

void Farm::terminalFailStaged(PendingJob&& pj, const char* why) {
  JobResult r;
  r.id = pj.id;
  r.name = pj.job.name;
  r.tenant = pj.job.tenant;
  r.status = JobStatus::Error;
  // The staged retry never ran: report the cause that sent it to the
  // retry path (its last recorded attempt), and the attempts that did run.
  r.cause = pj.history.empty() ? JobError::WorkerLost : pj.history.back().cause;
  r.attempts = std::max(1, pj.attempt - 1);
  r.latency_ms = msSince(pj.submitted);
  r.error = why;
  PendingJob owned = std::move(pj);
  owned.attempt = r.attempts;
  deliverTerminal(std::move(owned), std::move(r));
}

void Farm::scanForHungWorkers(Clock::time_point now) {
  std::vector<std::pair<int, std::shared_ptr<InFlight>>> hung;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    for (auto& w : workers_) {
      std::shared_ptr<InFlight> fl = w->inflight();
      if (!fl || !fl->supervised.load(std::memory_order_acquire)) continue;
      if (fl->supervise_ms <= 0.0) continue;
      const auto now_ns =
          std::chrono::duration_cast<std::chrono::nanoseconds>(now.time_since_epoch()).count();
      const auto beat_ns = fl->last_beat_ns.load(std::memory_order_acquire);
      const double silent_ms = static_cast<double>(now_ns - beat_ns) / 1e6;
      if (silent_ms <= fl->supervise_ms) continue;
      // Claim the job: from here its completion belongs to the supervisor
      // and the worker's own result (if it ever wakes) is void.
      if (!fl->tryClaim()) continue;
      hung.emplace_back(w->index(), std::move(fl));
    }
  }
  for (auto& [index, fl] : hung) handleHungWorker(index, fl);
}

void Farm::handleHungWorker(int index, const std::shared_ptr<InFlight>& fl) {
  replaceWorker(index);
  // The hung worker thread may still be wedged *reading* fl->pj.job inside
  // the simulator, so copy the job and metadata; only the promise moves
  // (the claim loser never touches it again).
  PendingJob meta;
  meta.job = fl->pj.job;
  meta.id = fl->pj.id;
  meta.submitted = fl->pj.submitted;
  meta.attempt = fl->pj.attempt;
  meta.worker_kills = fl->pj.worker_kills + 1;
  meta.run_priority = fl->pj.run_priority;
  meta.history = fl->pj.history;
  meta.promise = std::move(fl->pj.promise);
  // Like the promise, the terminal hook belongs to the claim winner; the
  // wedged loser never reads it.
  meta.on_terminal = std::move(fl->pj.on_terminal);

  JobResult r;
  r.status = JobStatus::Error;
  r.cause = JobError::WorkerLost;
  r.worker = index;
  r.wall_ms = msSince(fl->started);
  r.latency_ms = msSince(meta.submitted);
  r.error = "worker " + std::to_string(index) + " hung (no heartbeat within " +
            std::to_string(fl->supervise_ms) + " ms); worker replaced";
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++worker_lost_;
  }
  disposition(std::move(meta), std::move(r));
}

void Farm::replaceWorker(int index) {
  std::lock_guard<std::mutex> lock(workers_mu_);
  // A concurrent resizeWorkers() may have shrunk the pool since the hang
  // was observed; the job still fail-fasts, but there is no slot to refill.
  if (index < 0 || static_cast<std::size_t>(index) >= workers_.size()) return;
  auto& slot = workers_[static_cast<std::size_t>(index)];
  slot->retire();
  zombies_.push_back(std::move(slot));
  slot = std::make_unique<Worker>(index, queue_, *cache_, max_lanes_, finishFn());
  std::lock_guard<std::mutex> mlock(mu_);
  ++workers_replaced_;
}

void Farm::resizeWorkers(int n) {
  if (n < 1) n = 1;
  std::lock_guard<std::mutex> lock(workers_mu_);
  while (static_cast<int>(workers_.size()) > n) {
    // Retire from the top slot down: the worker finishes its current job
    // (retire() only takes effect at its next pop boundary), gets kicked
    // out of a blocked pop() by wake(), and parks on the zombie list with
    // its stats intact until the farm joins it at destruction.
    auto& slot = workers_.back();
    slot->retire();
    zombies_.push_back(std::move(slot));
    workers_.pop_back();
  }
  queue_.wake();
  while (static_cast<int>(workers_.size()) < n) {
    const int index = static_cast<int>(workers_.size());
    workers_.push_back(std::make_unique<Worker>(index, queue_, *cache_, max_lanes_, finishFn()));
  }
}

std::vector<QuarantineRecord> Farm::quarantined() const {
  std::lock_guard<std::mutex> lock(mu_);
  return quarantine_;
}

FarmMetrics Farm::metrics() const {
  FarmMetrics m;
  std::vector<double> lat;
  {
    std::lock_guard<std::mutex> lock(mu_);
    m.submitted = submitted_;
    m.accepted = accepted_;
    m.rejected = rejected_;
    m.completed = completed_;
    m.failed = failed_;
    m.deadline_exceeded = deadline_exceeded_;
    m.fault_latched = fault_latched_;
    m.worker_lost = worker_lost_;
    m.quarantined = quarantined_count_;
    m.retried = retried_;
    m.retry_succeeded = retry_succeeded_;
    m.workers_replaced = workers_replaced_;
    lat = latencies_ms_;
  }
  m.queue_depth = queue_.depth();
  m.lanes = queue_.gauges();
  m.staged_retries = supervisor_->stagedDepth();
  m.elapsed_s = std::chrono::duration<double>(Clock::now() - started_).count();
  const double delivered = static_cast<double>(m.completed + m.failed);
  m.jobs_per_s = m.elapsed_s > 0 ? delivered / m.elapsed_s : 0.0;
  std::sort(lat.begin(), lat.end());
  m.p50_ms = percentile(lat, 50);
  m.p95_ms = percentile(lat, 95);
  m.p99_ms = percentile(lat, 99);
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    m.workers.reserve(workers_.size());
    for (const auto& w : workers_) m.workers.push_back(w->stats());
    m.zombies.reserve(zombies_.size());
    for (const auto& w : zombies_) m.zombies.push_back(w->stats());
  }
  return m;
}

}  // namespace eclipse::farm
