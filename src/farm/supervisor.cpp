#include "eclipse/farm/supervisor.hpp"

#include <algorithm>
#include <utility>

#include "eclipse/farm/farm.hpp"

namespace eclipse::farm {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration msToDuration(double ms) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(std::max(0.0, ms)));
}

}  // namespace

Supervisor::Supervisor(Farm& farm) : farm_(farm) {}

Supervisor::~Supervisor() { shutdown(); }

void Supervisor::ensureRunning() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_ || stop_) return;
  started_ = true;
  thread_ = std::thread([this] { loop(); });
}

void Supervisor::schedule(PendingJob&& pj, double delay_ms) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      Staged s;
      s.due = Clock::now() + msToDuration(delay_ms);
      s.pj = std::move(pj);
      staged_.push_back(std::move(s));
      cv_.notify_all();
      return;
    }
  }
  // Already shut down (farm tearing down): the retry can never run, but
  // the caller still holds a future — resolve it terminally.
  farm_.terminalFailStaged(std::move(pj), "farm shut down before retry re-admission");
}

std::size_t Supervisor::stagedDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return staged_.size();
}

void Supervisor::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    // 1 ms cadence: far finer than any sane supervise_ms (>= 100 ms) and
    // coarse enough to be invisible in farm throughput. Only armed farms
    // ever start this thread.
    cv_.wait_for(lock, std::chrono::milliseconds(1));
    if (stop_) break;
    const auto now = Clock::now();
    std::vector<PendingJob> due;
    for (auto it = staged_.begin(); it != staged_.end();) {
      if (it->due <= now) {
        due.push_back(std::move(it->pj));
        it = staged_.erase(it);
      } else {
        ++it;
      }
    }
    lock.unlock();
    for (PendingJob& pj : due) {
      const Admission a = farm_.readmit(pj);  // moves from pj only on Accepted
      if (a == Admission::QueueFull) {
        // Backlog pressure: stage again and yield to the consumers. The
        // extra millisecond of backoff is noise next to a full queue.
        std::lock_guard<std::mutex> relock(mu_);
        if (!stop_) {
          staged_.push_back(Staged{now + msToDuration(1.0), std::move(pj)});
          continue;
        }
        farm_.terminalFailStaged(std::move(pj), "farm shut down before retry re-admission");
      } else if (a == Admission::ShuttingDown) {
        farm_.terminalFailStaged(std::move(pj), "farm closed during retry backoff");
      }
    }
    farm_.scanForHungWorkers(now);
    lock.lock();
  }
}

void Supervisor::shutdown() {
  std::vector<Staged> leftover;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !thread_.joinable() && staged_.empty()) return;
    stop_ = true;
    cv_.notify_all();
  }
  if (thread_.joinable()) thread_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftover.swap(staged_);
  }
  for (Staged& s : leftover) {
    farm_.terminalFailStaged(std::move(s.pj), "farm closed during retry backoff");
  }
}

}  // namespace eclipse::farm
