#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eclipse/sim/config.hpp"
#include "eclipse/sim/fault.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::farm {

/// Deterministic recipe for a job's media workload: the synthetic clip is
/// generated (and encoded to a golden bitstream) from these parameters
/// alone, so two jobs with equal descriptors share one prepared workload
/// (see WorkloadCache) and any worker reproduces it exactly.
struct WorkloadDesc {
  int width = 96;
  int height = 80;
  int frames = 5;
  std::uint64_t seed = 3;
  int qscale = 14;
  int gop_n = 9;
  int gop_m = 3;
  int detail = 8;
  double noise_level = 0.0;
  int motion_speed = 4;

  /// Cache key: every field, in a fixed order.
  [[nodiscard]] std::string key() const;
};

enum class AppKind { Decode, Encode };

[[nodiscard]] constexpr const char* appKindName(AppKind k) {
  return k == AppKind::Decode ? "decode" : "encode";
}

/// One application to configure onto the job's instance. A job may carry
/// several (the Section-6 mixes: two decodes, encode + decode, ...); they
/// run simultaneously on the same instance, time-sharing the coprocessors.
struct AppSpec {
  AppKind kind = AppKind::Decode;
  WorkloadDesc workload{};
};

enum class Priority { High = 0, Normal = 1, Low = 2 };

[[nodiscard]] constexpr const char* priorityName(Priority p) {
  switch (p) {
    case Priority::High: return "high";
    case Priority::Normal: return "normal";
    case Priority::Low: return "low";
  }
  return "?";
}

/// One lane lower (retried jobs yield the fast lanes to fresh traffic).
[[nodiscard]] constexpr Priority demoted(Priority p) {
  return p == Priority::Low ? Priority::Low
                            : static_cast<Priority>(static_cast<int>(p) + 1);
}

/// One lane higher (clamped at High) — the serving tier's mirror of
/// demoted(): a job whose deadline slack has shrunk below the promotion
/// threshold overtakes fresh traffic on the next lane up.
[[nodiscard]] constexpr Priority promoted(Priority p) {
  return p == Priority::High ? Priority::High
                             : static_cast<Priority>(static_cast<int>(p) - 1);
}

/// One segment of an adaptive (mode-scheduled) decode job: the clip
/// generated from `workload` is decoded under the named mode of the job's
/// decode mode family ("sd" / "hd"; see the worker's mode table). At each
/// segment boundary the worker performs a live diff-based transition
/// (DecodeApp::switchSegment) instead of tearing the application down.
struct ModeSegment {
  std::string mode = "sd";
  WorkloadDesc workload{};
};

/// How a failed attempt is retried. Retried runs execute on a recycled or
/// cold instance under the same recycle() contract as first runs, so every
/// attempt of a job is bit-identical in its simulated fields to a clean
/// first run — retries never change *what* a job computes, only how often
/// the farm is willing to compute it.
struct RetryPolicy {
  /// Total attempts, including the first. 1 = never retry.
  int max_attempts = 1;
  /// Host-side delay before re-admission of attempt 2 (exponential from
  /// there). 0 = immediate re-admission.
  double backoff_ms = 1.0;
  double backoff_multiplier = 2.0;
  /// Upper bound on any single backoff (0 = uncapped).
  double max_backoff_ms = 250.0;
  /// Deterministic per-(job, attempt) jitter: the backoff is stretched by
  /// up to this fraction, derived from the job seed — never wall-clock
  /// entropy — so a rerun of the same job list spreads retries the same
  /// way every time.
  double jitter_frac = 0.25;
  /// Re-admit retries one priority lane lower (clamped at Low), so a
  /// flapping job cannot starve the lane it was submitted on.
  bool demote_lane = true;
};

/// Deterministic backoff for `attempt` (>= 2) of a job: exponential in the
/// attempt number, jittered by a hash of (key, attempt). Pure function.
[[nodiscard]] double retryBackoffMs(const RetryPolicy& p, std::uint64_t key, int attempt);

/// Host-side fault injection for the chaos harness and the supervision
/// tests: the worker thread wedges (sleeps without heartbeating) for
/// `hang_ms` at the start of every attempt <= `attempts`, emulating a host
/// thread lost to a runaway syscall or scheduler pathology. Purely
/// host-side: it never touches the simulation, so a job that survives via
/// retry stays bit-identical to a clean run.
struct HostHangSpec {
  double hang_ms = 0.0;
  int attempts = 0;  ///< hang on attempts 1..attempts (0 = never)
};

/// One unit of farm work: a set of applications on one instance shape.
///
/// The determinism contract: every *simulated* field of the JobResult is a
/// pure function of this struct — independent of worker count, submission
/// order, retry count, or whether the executing instance is cold or
/// recycled.
struct Job {
  std::string name;
  /// Owning tenant (serving tier). Pure pass-through for the farm — it
  /// never affects scheduling here (per-tenant QoS lives in eclipse::serve,
  /// *above* the lanes) and is echoed back in JobResult::tenant so results
  /// can be routed and accounted per tenant. Empty for batch jobs.
  std::string tenant;
  std::vector<AppSpec> apps{AppSpec{}};  ///< default: one decode application
  sim::Config config{};                  ///< instance parameters (shape key)
  std::uint64_t seed = 0;  ///< recorded; keys the retry-backoff jitter
  Priority priority = Priority::Normal;
  sim::FaultPlan faults{};     ///< non-empty => instance retired after the job
  sim::Cycle watchdog_timeout = 0;  ///< arm per-shell watchdogs when > 0
  sim::Cycle max_cycles = 50'000'000;  ///< simulated-cycle budget (0 = unbounded)
  bool verify = true;  ///< bit-exact (decode) / PSNR (encode) checks

  /// Simulated-cycle deadline (0 = none). Unlike `max_cycles` (a safety
  /// budget that marks the job Incomplete), a deadline is a QoS bound: a
  /// job still unfinished after `deadline` cycles stops *at exactly that
  /// cycle* on every worker and fails with JobError::DeadlineExceeded —
  /// deterministic, hence retryable under the bit-identity contract.
  /// Meaningful only when <= max_cycles.
  sim::Cycle deadline = 0;

  /// Host wall-clock supervision timeout in milliseconds (0 = unarmed).
  /// When armed, the worker heartbeats between bounded simulation slices
  /// and the farm's Supervisor declares the worker hung — replacing it and
  /// fail-fasting this job to the retry path with JobError::WorkerLost —
  /// if no heartbeat lands within this window. Should comfortably exceed
  /// the host cost of one slice (see DESIGN §14; >= 100 ms recommended).
  double supervise_ms = 0.0;

  /// Retry policy for deterministic failures (deadline, stall, latched
  /// fault) and host-side losses (hung worker).
  RetryPolicy retry{};

  /// Chaos-harness hook (host-side worker hang injection; test-only).
  HostHangSpec chaos{};

  /// Requested shard lanes for the job's instance (ShardPlan::shards; the
  /// fusion rule decides what actually spreads). Host-side resource only:
  /// the sharded kernel is bit-identical to the serial oracle, so this
  /// field is *outside* the shape of the determinism contract — the worker
  /// may clamp it to the farm's lane budget (see FarmOptions::lane_threads)
  /// without changing any simulated result. 0 behaves as 1.
  std::uint32_t shards = 1;

  /// Adaptive-decode schedule. When non-empty, `apps` is ignored and the
  /// job runs ONE multi-mode decode application through the segments in
  /// order, switching modes live at each boundary. The simulated fields of
  /// the result stay under the determinism contract: the whole scheduled
  /// run is a pure function of this vector.
  std::vector<ModeSegment> schedule;

  /// True when this job ever interacts with the supervision tier (needs
  /// the Supervisor thread running).
  [[nodiscard]] bool armsSupervision() const {
    return supervise_ms > 0.0 || retry.max_attempts > 1 || chaos.attempts > 0;
  }
};

/// Admission-control outcome of a submit.
enum class Admission { Accepted, QueueFull, ShuttingDown };

[[nodiscard]] constexpr const char* admissionName(Admission a) {
  switch (a) {
    case Admission::Accepted: return "accepted";
    case Admission::QueueFull: return "queue-full";
    case Admission::ShuttingDown: return "shutting-down";
  }
  return "?";
}

enum class JobStatus {
  Completed,    ///< every application finished (verification may still fail)
  Incomplete,   ///< stopped without finishing (budget, stall, fault abort)
  Error,        ///< configuration/runtime error before or during the run
  Quarantined,  ///< killed two workers; barred from further execution
};

[[nodiscard]] constexpr const char* jobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::Completed: return "completed";
    case JobStatus::Incomplete: return "incomplete";
    case JobStatus::Error: return "error";
    case JobStatus::Quarantined: return "quarantined";
  }
  return "?";
}

/// Structured failure taxonomy — the *cause* behind a non-Completed status
/// (the status says how far the job got; the cause says why it stopped).
enum class JobError {
  None,              ///< completed (or never ran into a classified failure)
  DeadlineExceeded,  ///< hit Job::deadline at a deterministic cycle
  Stall,             ///< quiesced without finishing: starved/deadlocked/budget
  FaultLatched,      ///< a task latched a fault register (PR-4 containment)
  Config,            ///< deterministic configuration/runtime error (no retry)
  WorkerLost,        ///< the executing worker hung; job fail-fasted by the
                     ///< Supervisor (host-side, invisible to the simulation)
};

[[nodiscard]] constexpr const char* jobErrorName(JobError e) {
  switch (e) {
    case JobError::None: return "none";
    case JobError::DeadlineExceeded: return "deadline-exceeded";
    case JobError::Stall: return "stall";
    case JobError::FaultLatched: return "fault-latched";
    case JobError::Config: return "config";
    case JobError::WorkerLost: return "worker-lost";
  }
  return "?";
}

/// Causes eligible for re-admission under a RetryPolicy. Config errors are
/// deterministic rejections (same spec => same throw) and never retried.
[[nodiscard]] constexpr bool retryableError(JobError e) {
  return e == JobError::DeadlineExceeded || e == JobError::Stall ||
         e == JobError::FaultLatched || e == JobError::WorkerLost;
}

/// One prior attempt of a retried job (carried into the terminal result so
/// tests and the chaos gate can assert per-attempt determinism: failed
/// attempts of a deterministic failure are bit-identical in their
/// simulated fields, whatever worker ran them).
struct AttemptRecord {
  int attempt = 1;
  JobStatus status = JobStatus::Error;
  JobError cause = JobError::None;
  sim::Cycle sim_cycles = 0;
  std::uint64_t sim_events = 0;
  int worker = -1;  ///< host-side: which worker ran the attempt
};

/// Per-job outcome. Simulated fields are covered by the determinism
/// contract; host-side fields (worker, reuse, wall/latency times, attempt
/// count) describe this particular execution and may vary run to run.
struct JobResult {
  std::uint64_t id = 0;
  std::string name;
  std::string tenant;  ///< echo of Job::tenant (empty for batch jobs)
  JobStatus status = JobStatus::Error;
  JobError cause = JobError::None;  ///< why status != Completed

  // --- simulated (bit-identical for a given Job) ---
  sim::Cycle sim_cycles = 0;      ///< cycles from launch to stop
  std::uint64_t sim_events = 0;   ///< kernel events dispatched in that span
  std::uint64_t macroblocks = 0;  ///< decoded MBs across the job's apps
  bool bit_exact = false;         ///< decode outputs match the golden frames
  double psnr_db = 0.0;           ///< min luma PSNR across encode apps
  std::uint64_t faults_latched = 0;
  std::uint64_t stalls_latched = 0;
  std::uint64_t fault_triggers = 0;  ///< injected faults that actually fired
  std::uint64_t frames_dropped = 0;
  std::uint64_t mode_switches = 0;       ///< live transitions (scheduled jobs)
  std::uint64_t switch_mmio_writes = 0;  ///< control-plane writes spent on them
  std::string quiescence;  ///< classification when incomplete

  // --- host-side (execution facts, outside the contract) ---
  int worker = -1;
  std::uint32_t lanes = 1;  ///< shard lanes granted (Job::shards clamped to budget)
  bool reused_instance = false;
  int attempts = 1;  ///< attempts consumed (1 = succeeded/failed first try)
  std::vector<AttemptRecord> attempts_log;  ///< prior (non-terminal) attempts
  double wall_ms = 0.0;     ///< run time on the worker (terminal attempt)
  double latency_ms = 0.0;  ///< submission to terminal result, all attempts
  std::string error;
};

}  // namespace eclipse::farm
