#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eclipse/sim/config.hpp"
#include "eclipse/sim/fault.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::farm {

/// Deterministic recipe for a job's media workload: the synthetic clip is
/// generated (and encoded to a golden bitstream) from these parameters
/// alone, so two jobs with equal descriptors share one prepared workload
/// (see WorkloadCache) and any worker reproduces it exactly.
struct WorkloadDesc {
  int width = 96;
  int height = 80;
  int frames = 5;
  std::uint64_t seed = 3;
  int qscale = 14;
  int gop_n = 9;
  int gop_m = 3;
  int detail = 8;
  double noise_level = 0.0;
  int motion_speed = 4;

  /// Cache key: every field, in a fixed order.
  [[nodiscard]] std::string key() const;
};

enum class AppKind { Decode, Encode };

[[nodiscard]] constexpr const char* appKindName(AppKind k) {
  return k == AppKind::Decode ? "decode" : "encode";
}

/// One application to configure onto the job's instance. A job may carry
/// several (the Section-6 mixes: two decodes, encode + decode, ...); they
/// run simultaneously on the same instance, time-sharing the coprocessors.
struct AppSpec {
  AppKind kind = AppKind::Decode;
  WorkloadDesc workload{};
};

enum class Priority { High = 0, Normal = 1, Low = 2 };

/// One segment of an adaptive (mode-scheduled) decode job: the clip
/// generated from `workload` is decoded under the named mode of the job's
/// decode mode family ("sd" / "hd"; see the worker's mode table). At each
/// segment boundary the worker performs a live diff-based transition
/// (DecodeApp::switchSegment) instead of tearing the application down.
struct ModeSegment {
  std::string mode = "sd";
  WorkloadDesc workload{};
};

/// One unit of farm work: a set of applications on one instance shape.
///
/// The determinism contract: every *simulated* field of the JobResult is a
/// pure function of this struct — independent of worker count, submission
/// order, queue state, or whether the executing instance is cold or
/// recycled.
struct Job {
  std::string name;
  std::vector<AppSpec> apps{AppSpec{}};  ///< default: one decode application
  sim::Config config{};                  ///< instance parameters (shape key)
  std::uint64_t seed = 0;                ///< recorded; reserved for seeded plans
  Priority priority = Priority::Normal;
  sim::FaultPlan faults{};     ///< non-empty => instance retired after the job
  sim::Cycle watchdog_timeout = 0;  ///< arm per-shell watchdogs when > 0
  sim::Cycle max_cycles = 50'000'000;  ///< simulated-cycle budget (0 = unbounded)
  bool verify = true;  ///< bit-exact (decode) / PSNR (encode) checks

  /// Requested shard lanes for the job's instance (ShardPlan::shards; the
  /// fusion rule decides what actually spreads). Host-side resource only:
  /// the sharded kernel is bit-identical to the serial oracle, so this
  /// field is *outside* the shape of the determinism contract — the worker
  /// may clamp it to the farm's lane budget (see FarmOptions::lane_threads)
  /// without changing any simulated result. 0 behaves as 1.
  std::uint32_t shards = 1;

  /// Adaptive-decode schedule. When non-empty, `apps` is ignored and the
  /// job runs ONE multi-mode decode application through the segments in
  /// order, switching modes live at each boundary. The simulated fields of
  /// the result stay under the determinism contract: the whole scheduled
  /// run is a pure function of this vector.
  std::vector<ModeSegment> schedule;
};

/// Admission-control outcome of a submit.
enum class Admission { Accepted, QueueFull, ShuttingDown };

[[nodiscard]] constexpr const char* admissionName(Admission a) {
  switch (a) {
    case Admission::Accepted: return "accepted";
    case Admission::QueueFull: return "queue-full";
    case Admission::ShuttingDown: return "shutting-down";
  }
  return "?";
}

enum class JobStatus {
  Completed,   ///< every application finished (verification may still fail)
  Incomplete,  ///< stopped without finishing (budget, stall, fault abort)
  Error,       ///< configuration/runtime error before or during the run
};

[[nodiscard]] constexpr const char* jobStatusName(JobStatus s) {
  switch (s) {
    case JobStatus::Completed: return "completed";
    case JobStatus::Incomplete: return "incomplete";
    case JobStatus::Error: return "error";
  }
  return "?";
}

/// Per-job outcome. Simulated fields are covered by the determinism
/// contract; host-side fields (worker, reuse, wall/latency times) describe
/// this particular execution and may vary run to run.
struct JobResult {
  std::uint64_t id = 0;
  std::string name;
  JobStatus status = JobStatus::Error;

  // --- simulated (bit-identical for a given Job) ---
  sim::Cycle sim_cycles = 0;      ///< cycles from launch to stop
  std::uint64_t sim_events = 0;   ///< kernel events dispatched in that span
  std::uint64_t macroblocks = 0;  ///< decoded MBs across the job's apps
  bool bit_exact = false;         ///< decode outputs match the golden frames
  double psnr_db = 0.0;           ///< min luma PSNR across encode apps
  std::uint64_t faults_latched = 0;
  std::uint64_t stalls_latched = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t mode_switches = 0;       ///< live transitions (scheduled jobs)
  std::uint64_t switch_mmio_writes = 0;  ///< control-plane writes spent on them
  std::string quiescence;  ///< classification when incomplete

  // --- host-side (execution facts, outside the contract) ---
  int worker = -1;
  std::uint32_t lanes = 1;  ///< shard lanes granted (Job::shards clamped to budget)
  bool reused_instance = false;
  double wall_ms = 0.0;     ///< run time on the worker
  double latency_ms = 0.0;  ///< submission to completion
  std::string error;
};

}  // namespace eclipse::farm
