#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "eclipse/farm/job_queue.hpp"

namespace eclipse::farm {

class Farm;

/// The farm's self-healing control thread.
///
/// Two duties, both driven from one ~1 ms poll loop:
///
///  * **Retry staging.** Failed attempts eligible for retry are parked
///    here with their deterministic backoff deadline and re-admitted into
///    the farm's priority queue (demoted lane) when due. A full queue
///    retries next tick; a closed queue terminal-fails the job so no
///    promise is ever stranded.
///
///  * **Hang detection.** Every supervised in-flight job publishes
///    heartbeats; when one goes silent past its `supervise_ms`, the
///    Supervisor claims the job (InFlight::tryClaim — the claim winner
///    owns the promise), has the farm replace the wedged worker with a
///    fresh one, and fail-fasts the job to the retry path as WorkerLost.
///
/// The thread is started lazily by the first job that arms supervision or
/// retries, so farms that never use the tier never pay for it — not even
/// a parked thread.
class Supervisor {
 public:
  explicit Supervisor(Farm& farm);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Starts the monitor thread if it is not running yet (idempotent,
  /// thread-safe). Called on the first supervision-arming submission.
  void ensureRunning();

  /// Stages a retry for re-admission after `delay_ms`. Thread-safe; if
  /// the supervisor is already shut down the job terminal-fails instead
  /// (its promise still resolves).
  void schedule(PendingJob&& pj, double delay_ms);

  /// Stops the thread and terminal-fails anything still staged. Idempotent;
  /// called from the farm destructor after the workers have been joined.
  void shutdown();

  /// Staged retries currently waiting for their backoff to elapse.
  [[nodiscard]] std::size_t stagedDepth() const;

 private:
  void loop();

  struct Staged {
    std::chrono::steady_clock::time_point due{};
    PendingJob pj;
  };

  Farm& farm_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Staged> staged_;
  bool started_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace eclipse::farm
