#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "eclipse/farm/job.hpp"
#include "eclipse/farm/job_queue.hpp"
#include "eclipse/farm/worker.hpp"
#include "eclipse/farm/workload_cache.hpp"

namespace eclipse::farm {

struct FarmOptions {
  int workers = 0;  ///< 0 = std::thread::hardware_concurrency()
  std::size_t queue_capacity = 64;
  /// Host-thread budget for shard lanes, shared across the workers: each
  /// worker grants a job at most max(1, lane_threads / workers) lanes, so
  /// worker parallelism and intra-job lane parallelism compose without
  /// oversubscribing the host. 0 = hardware_concurrency(). Clamping is
  /// contract-safe: lane count never changes a job's simulated result.
  int lane_threads = 0;
  /// Share a prepared-workload cache across farms (e.g. a bench sweeping
  /// worker counts pays video generation once). Null = private cache.
  std::shared_ptr<WorkloadCache> cache;
};

/// Aggregate farm metrics (host-side view; snapshot).
struct FarmMetrics {
  std::uint64_t submitted = 0;  ///< submit attempts
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  ///< QueueFull or ShuttingDown
  std::uint64_t completed = 0;  ///< results delivered with status Completed
  std::uint64_t failed = 0;     ///< Incomplete or Error results
  std::size_t queue_depth = 0;
  double elapsed_s = 0.0;   ///< since farm construction
  double jobs_per_s = 0.0;  ///< delivered results / elapsed
  // Completion-latency percentiles (submission to result, ms).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<WorkerStats> workers;

  [[nodiscard]] std::uint64_t reused() const {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) n += w.reused;
    return n;
  }
  [[nodiscard]] std::uint64_t coldBuilds() const {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) n += w.cold_builds;
    return n;
  }
};

/// Outcome of a non-blocking submit: the future is valid only when the
/// job was Accepted.
struct SubmitTicket {
  Admission admission = Admission::ShuttingDown;
  std::future<JobResult> result;
};

/// The batch-serving front-end: N workers behind a bounded priority
/// queue. Deterministic by construction — all simulation state is private
/// to a worker, so a job's simulated result does not depend on worker
/// count, placement, or interleaving (see DESIGN §10).
class Farm {
 public:
  explicit Farm(FarmOptions options = {});
  /// Closes the queue and joins the workers; queued jobs still run.
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Non-blocking submission with admission control: a full queue rejects
  /// (QueueFull) instead of buffering unboundedly.
  SubmitTicket submit(Job job);

  /// Cooperating submission: blocks until the queue has room. Throws
  /// std::runtime_error when the farm is shutting down.
  std::future<JobResult> submitWait(Job job);

  /// Submits a batch with waiting admission; futures arrive in job order.
  std::vector<std::future<JobResult>> submitBatch(std::vector<Job> jobs);

  /// Blocks until every accepted job has delivered its result.
  void drain();

  /// Stops admissions; workers finish the backlog and exit.
  void close();

  [[nodiscard]] FarmMetrics metrics() const;
  [[nodiscard]] std::size_t queueDepth() const { return queue_.depth(); }
  [[nodiscard]] int workerCount() const { return static_cast<int>(workers_.size()); }
  [[nodiscard]] WorkloadCache& workloadCache() { return *cache_; }

 private:
  PendingJob makePending(Job&& job);
  void onComplete(const JobResult& r);

  std::shared_ptr<WorkloadCache> cache_;
  JobQueue queue_;
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::vector<double> latencies_ms_;

  std::vector<std::unique_ptr<Worker>> workers_;  // after queue_: joined first
};

}  // namespace eclipse::farm
