#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "eclipse/farm/job.hpp"
#include "eclipse/farm/job_queue.hpp"
#include "eclipse/farm/supervisor.hpp"
#include "eclipse/farm/worker.hpp"
#include "eclipse/farm/workload_cache.hpp"

namespace eclipse::farm {

struct FarmOptions {
  int workers = 0;  ///< 0 = std::thread::hardware_concurrency()
  std::size_t queue_capacity = 64;
  /// Host-thread budget for shard lanes, shared across the workers: each
  /// worker grants a job at most max(1, lane_threads / workers) lanes, so
  /// worker parallelism and intra-job lane parallelism compose without
  /// oversubscribing the host. 0 = hardware_concurrency(). Clamping is
  /// contract-safe: lane count never changes a job's simulated result.
  int lane_threads = 0;
  /// Share a prepared-workload cache across farms (e.g. a bench sweeping
  /// worker counts pays video generation once). Null = private cache.
  std::shared_ptr<WorkloadCache> cache;
};

/// A job the farm refuses to run again: it hung (killed) two workers.
/// Terminal — its future resolved with status Quarantined and it will
/// never be re-admitted, however many retry attempts its policy had left.
struct QuarantineRecord {
  std::uint64_t id = 0;
  std::string name;
  int attempts = 0;      ///< attempts consumed before quarantine
  int worker_kills = 0;  ///< workers this job took down (>= 2)
  std::string error;
};

/// Aggregate farm metrics (host-side view; snapshot).
struct FarmMetrics {
  std::uint64_t submitted = 0;  ///< submit attempts
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;  ///< QueueFull or ShuttingDown
  std::uint64_t completed = 0;  ///< results delivered with status Completed
  std::uint64_t failed = 0;     ///< terminal non-Completed results
  // Per-cause breakdown of the failure/retry traffic (see JobError):
  std::uint64_t deadline_exceeded = 0;  ///< terminal deadline failures
  std::uint64_t fault_latched = 0;      ///< terminal fault-latch failures
  std::uint64_t worker_lost = 0;     ///< hang events (each costs one worker)
  std::uint64_t quarantined = 0;     ///< jobs retired after killing 2 workers
  std::uint64_t retried = 0;         ///< re-admissions staged
  std::uint64_t retry_succeeded = 0;  ///< completions that needed > 1 attempt
  std::uint64_t workers_replaced = 0;  ///< fresh workers spawned for hung ones
  std::size_t queue_depth = 0;
  /// Per-lane *now* gauges (depth + oldest-job queue age), indexed by
  /// Priority — the cumulative counters above say what happened, these say
  /// what is waiting right now (the serving tier exports them live).
  std::array<LaneGauge, 3> lanes{};
  std::size_t staged_retries = 0;  ///< retries waiting out their backoff
  double elapsed_s = 0.0;   ///< since farm construction
  double jobs_per_s = 0.0;  ///< delivered results / elapsed
  // Completion-latency percentiles (submission to result, ms).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  std::vector<WorkerStats> workers;  ///< active workers
  std::vector<WorkerStats> zombies;  ///< retired (replaced) workers

  [[nodiscard]] std::uint64_t reused() const {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) n += w.reused;
    for (const WorkerStats& w : zombies) n += w.reused;
    return n;
  }
  [[nodiscard]] std::uint64_t coldBuilds() const {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) n += w.cold_builds;
    for (const WorkerStats& w : zombies) n += w.cold_builds;
    return n;
  }
  /// Jobs that ran under heartbeat slicing (0 on an unarmed farm: the
  /// chaos harness gates on exactly that to pin the zero-overhead claim).
  [[nodiscard]] std::uint64_t supervisedJobs() const {
    std::uint64_t n = 0;
    for (const WorkerStats& w : workers) n += w.supervised_jobs;
    for (const WorkerStats& w : zombies) n += w.supervised_jobs;
    return n;
  }
};

/// Outcome of a non-blocking submit: the future is valid only when the
/// job was Accepted.
struct SubmitTicket {
  Admission admission = Admission::ShuttingDown;
  std::future<JobResult> result;
};

/// The batch-serving front-end: N workers behind a bounded priority
/// queue. Deterministic by construction — all simulation state is private
/// to a worker, so a job's simulated result does not depend on worker
/// count, placement, or interleaving (see DESIGN §10).
///
/// Supervision tier (DESIGN §14): jobs may arm a simulated-cycle deadline,
/// a host wall-clock supervision timeout and a retry policy. The farm then
/// self-heals — hung workers are retired to a zombie list and replaced,
/// their in-flight jobs fail-fast to the retry path, retries re-admit on a
/// demoted lane after a deterministic backoff, and a job that kills two
/// workers is quarantined. Every accepted job's future resolves exactly
/// once, terminal, whatever happens; retried runs are bit-identical to a
/// clean first run in all simulated fields.
class Farm {
 public:
  explicit Farm(FarmOptions options = {});
  /// Closes the queue and joins the workers; queued jobs still run.
  ~Farm();

  Farm(const Farm&) = delete;
  Farm& operator=(const Farm&) = delete;

  /// Non-blocking submission with admission control: a full queue rejects
  /// (QueueFull) instead of buffering unboundedly.
  SubmitTicket submit(Job job);

  /// Cooperating submission: blocks until the queue has room. Throws
  /// std::runtime_error when the farm is shutting down.
  std::future<JobResult> submitWait(Job job);

  /// Bounded-blocking submission: waits up to `timeout` for queue space
  /// and reports the admission outcome instead of blocking forever or
  /// throwing — QueueFull when the wait timed out, ShuttingDown when the
  /// farm closed while waiting. The ticket's future is valid only when
  /// Accepted. The serving tier's submission primitive.
  SubmitTicket submitFor(Job job, std::chrono::milliseconds timeout);

  /// Non-blocking submission with a terminal-result callback: `on_result`
  /// fires exactly once, after metrics are updated and just before the
  /// (still valid) future resolves, on whichever thread delivered the
  /// terminal result — it must not block. Lets the serving tier fan many
  /// thousand results back to connections without a waiter thread each.
  SubmitTicket submitCallback(Job job, std::function<void(const JobResult&)> on_result);

  /// Submits a batch with waiting admission; futures arrive in job order.
  std::vector<std::future<JobResult>> submitBatch(std::vector<Job> jobs);

  /// Blocks until every accepted job has delivered its terminal result
  /// (retried jobs count as delivered only once terminal).
  void drain();

  /// Stops admissions; workers finish the backlog and exit. Retries still
  /// in backoff terminal-fail instead of re-admitting.
  void close();

  /// Live worker-pool resize (config reload): grows by spawning fresh
  /// workers, shrinks by retiring the highest slots — each retiree
  /// finishes its current job, so no accepted work is dropped, and its
  /// stats are preserved on the zombie list. The per-job lane budget
  /// (max lanes) is fixed at construction and not rebalanced. Clamped to
  /// >= 1; no-op when `n` equals the current count.
  void resizeWorkers(int n);

  [[nodiscard]] FarmMetrics metrics() const;
  /// Per-lane depth + oldest-job age right now (telemetry gauges).
  [[nodiscard]] std::array<LaneGauge, 3> laneGauges() const { return queue_.gauges(); }
  /// Jobs retired for killing two workers (terminal; never re-admitted).
  [[nodiscard]] std::vector<QuarantineRecord> quarantined() const;
  [[nodiscard]] std::size_t queueDepth() const { return queue_.depth(); }
  [[nodiscard]] int workerCount() const;
  [[nodiscard]] WorkloadCache& workloadCache() { return *cache_; }

 private:
  friend class Supervisor;

  PendingJob makePending(Job&& job);
  /// Terminal-or-retry decision for a finished attempt. Owns `pj` (and in
  /// particular its promise); every path resolves or re-stages it.
  void disposition(PendingJob&& pj, JobResult&& r);
  /// Terminal delivery: metrics, quarantine ledger, promise resolution.
  void deliverTerminal(PendingJob&& pj, JobResult&& r);
  /// Supervisor duties (called from the supervisor thread):
  Admission readmit(PendingJob& pj);
  void terminalFailStaged(PendingJob&& pj, const char* why);
  void scanForHungWorkers(std::chrono::steady_clock::time_point now);
  void handleHungWorker(int index, const std::shared_ptr<InFlight>& fl);
  /// Retires `workers_[index]` to the zombie list and spawns a fresh
  /// worker (cold instance) in its slot.
  void replaceWorker(int index);
  [[nodiscard]] Worker::FinishFn finishFn();

  std::shared_ptr<WorkloadCache> cache_;
  JobQueue queue_;
  std::chrono::steady_clock::time_point started_;
  std::uint32_t max_lanes_ = 1;

  mutable std::mutex mu_;
  std::condition_variable drained_;
  std::uint64_t next_id_ = 1;
  std::uint64_t submitted_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t deadline_exceeded_ = 0;
  std::uint64_t fault_latched_ = 0;
  std::uint64_t worker_lost_ = 0;
  std::uint64_t quarantined_count_ = 0;
  std::uint64_t retried_ = 0;
  std::uint64_t retry_succeeded_ = 0;
  std::uint64_t workers_replaced_ = 0;
  std::vector<double> latencies_ms_;
  std::vector<QuarantineRecord> quarantine_;

  // Lifetime order matters at teardown: the supervisor is shut down only
  // after every worker (and zombie) thread has been joined, and both
  // outlive the queue they reference.
  std::unique_ptr<Supervisor> supervisor_;
  mutable std::mutex workers_mu_;  ///< guards workers_ + zombies_ membership
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::unique_ptr<Worker>> zombies_;  ///< retired hung workers
};

}  // namespace eclipse::farm
