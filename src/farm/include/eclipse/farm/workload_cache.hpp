#pragma once

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "eclipse/farm/job.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/media/video_gen.hpp"

namespace eclipse::farm {

/// A fully prepared media workload: the generated clip, its golden
/// elementary stream and the encoder's reconstruction (decode ground
/// truth). Immutable once built — workers share it read-only across
/// threads, which is safe under the one-thread-per-Simulator contract.
struct PreparedWorkload {
  media::VideoGenParams video{};
  media::CodecParams codec{};
  std::vector<media::Frame> frames;
  std::vector<std::uint8_t> bitstream;
  std::vector<media::Frame> golden;
  std::uint64_t macroblocks_per_clip = 0;
};

/// Generate-once, share-forever cache keyed by WorkloadDesc::key().
///
/// Workload preparation (video synthesis + golden encode) is the dominant
/// host-side cost of small jobs; a 200-job batch typically uses a handful
/// of distinct descriptors. The first worker to request a descriptor
/// builds it outside the lock while later requesters block on a shared
/// future, so each unique workload is built exactly once even when many
/// workers ask simultaneously.
class WorkloadCache {
 public:
  std::shared_ptr<const PreparedWorkload> get(const WorkloadDesc& desc);

  [[nodiscard]] std::size_t size() const;

 private:
  using Entry = std::shared_future<std::shared_ptr<const PreparedWorkload>>;

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

}  // namespace eclipse::farm
