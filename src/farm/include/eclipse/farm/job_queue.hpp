#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <optional>

#include "eclipse/farm/job.hpp"

namespace eclipse::farm {

/// A job admitted to the farm, waiting for (or owned by) a worker.
///
/// Retry metadata rides along: the id, the submission timestamp (latency
/// covers every attempt) and the promise survive re-admission, while
/// `attempt`/`worker_kills`/`history` accumulate and `run_priority`
/// carries the demoted lane of a retry without touching the user's Job.
struct PendingJob {
  Job job;
  std::uint64_t id = 0;
  std::chrono::steady_clock::time_point submitted{};
  /// When this pending entered the queue it currently sits in (re-stamped
  /// on every push, including retry re-admissions) — the queue-age gauges
  /// measure from here, while `submitted` anchors end-to-end latency.
  std::chrono::steady_clock::time_point queued{};
  std::promise<JobResult> promise;
  /// Optional terminal-result hook (Farm::submitCallback): invoked exactly
  /// once, by the claim winner, after metrics and just before the promise
  /// resolves. The serving tier routes results back to connections here
  /// without parking a thread per future.
  std::function<void(const JobResult&)> on_terminal;

  int attempt = 1;       ///< 1-based; incremented on each re-admission
  int worker_kills = 0;  ///< workers this job has hung (2 => quarantine)
  std::optional<Priority> run_priority;     ///< demoted lane of a retry
  std::vector<AttemptRecord> history;       ///< prior failed attempts

  /// Lane this pending job queues on: the retry-demoted lane when set,
  /// the job's submitted priority otherwise.
  [[nodiscard]] Priority lane() const { return run_priority.value_or(job.priority); }
};

/// Current state of one priority lane: how many jobs are queued on it and
/// how long the one at the head (the oldest) has been waiting. Gauges, not
/// counters — they describe *now*, complementing FarmMetrics' cumulative
/// view, and feed the serving tier's telemetry endpoint.
struct LaneGauge {
  std::size_t depth = 0;
  double oldest_ms = 0.0;  ///< queue age of the lane's head job (0 if empty)
};

/// Bounded multi-producer / multi-consumer queue with three priority
/// lanes. Admission control is explicit: tryPush() never blocks and
/// reports QueueFull when the bound is hit, so callers can shed load
/// (reject upstream) instead of buffering without limit; waitPush() is
/// the cooperating-producer alternative that blocks for space (optionally
/// bounded by a timeout via waitPushFor).
class JobQueue {
 public:
  explicit JobQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Non-blocking admission. On anything but Accepted the job is returned
  /// untouched in `pj`.
  Admission tryPush(PendingJob&& pj);

  /// Blocks while the queue is full; returns false (job untouched) when
  /// the queue was closed before space appeared.
  bool waitPush(PendingJob&& pj);

  /// Like waitPush, but gives up after `timeout`: QueueFull when no space
  /// appeared in time (job untouched), ShuttingDown when the queue closed
  /// while waiting. The serving tier's bounded-blocking submission path.
  Admission waitPushFor(PendingJob&& pj, std::chrono::milliseconds timeout);

  /// Blocks for the next job, highest priority lane first (FIFO within a
  /// lane). Returns nullopt once the queue is closed *and* empty, letting
  /// workers drain the backlog before exiting — or, when `stop` is given,
  /// as soon as it reads true with nothing popped (a retiring worker
  /// leaves without waiting for the queue to close; see wake()).
  std::optional<PendingJob> pop(const std::atomic<bool>* stop = nullptr);

  /// Stops admissions; pop() keeps draining what was already accepted.
  void close();

  /// Wakes every blocked pop() so stop-flagged poppers can re-check their
  /// flag (used when retiring a worker without closing the queue).
  void wake();

  [[nodiscard]] std::size_t depth() const;
  /// Per-lane depth + oldest-job age, indexed by Priority.
  [[nodiscard]] std::array<LaneGauge, 3> gauges() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] bool closed() const;

 private:
  [[nodiscard]] std::size_t depthLocked() const {
    return lanes_[0].size() + lanes_[1].size() + lanes_[2].size();
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PendingJob> lanes_[3];  // indexed by Priority
  bool closed_ = false;
};

}  // namespace eclipse::farm
