#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "eclipse/app/instance.hpp"
#include "eclipse/farm/job.hpp"
#include "eclipse/farm/job_queue.hpp"
#include "eclipse/farm/workload_cache.hpp"

namespace eclipse::farm {

/// Execution counters of one worker (snapshot; host-side quantities).
struct WorkerStats {
  int index = -1;
  std::uint64_t jobs = 0;
  std::uint64_t completed = 0;  ///< status == Completed
  std::uint64_t failed = 0;     ///< Incomplete or Error
  std::uint64_t reused = 0;     ///< jobs served by a recycled instance
  std::uint64_t cold_builds = 0;  ///< jobs that built a fresh instance
  double busy_ms = 0.0;     ///< wall time spent inside jobs
  double build_ms = 0.0;    ///< wall time constructing instances (cold path)
  double recycle_ms = 0.0;  ///< wall time in teardown-settle-recycle (reuse path)
};

/// One farm worker: a host thread owning a private Simulator +
/// EclipseInstance, pulling jobs from the shared queue until it closes.
///
/// Instance reuse: after a clean job the instance is recycled (drain /
/// teardown / EclipseInstance::recycle()) and kept for the next job with
/// the same `Config` shape — bit-identical to a cold build by
/// construction. The worker falls back to a cold rebuild when the shape
/// changes, when the previous job armed faults or watchdogs, latched any
/// fault or stall, ended incomplete, or threw: auditing residual state is
/// never cheaper than rebuilding, and isolation must hold regardless.
class Worker {
 public:
  using CompletionFn = std::function<void(const JobResult&)>;

  /// `max_lanes` caps the shard lanes any one job may be granted (the
  /// farm's lane-thread budget divided among the workers; >= 1).
  Worker(int index, JobQueue& queue, WorkloadCache& cache, std::uint32_t max_lanes,
         CompletionFn on_complete);
  ~Worker() { join(); }

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Blocks until the worker thread exits (the queue must be closed).
  void join();

  [[nodiscard]] WorkerStats stats() const;

 private:
  void threadMain();
  JobResult runJob(const Job& job);
  /// Scheduled (adaptive multi-segment) decode path: one multi-mode
  /// DecodeApp, a live switchSegment transition at every boundary.
  void runScheduled(const Job& job, JobResult& r);
  /// Reuses the recycled instance when the Config shape matches, builds a
  /// cold one otherwise; records the choice in `r` and the stats.
  void acquireInstance(const Job& job, JobResult& r);
  /// Quiesce/teardown the finished job and recycle the instance for
  /// reuse; on any doubt, retire the instance (next job builds cold).
  void retireOrRecycle(bool healthy);

  const int index_;
  JobQueue& queue_;
  WorkloadCache& cache_;
  const std::uint32_t max_lanes_;
  CompletionFn on_complete_;

  // Owned by the worker thread exclusively (one thread per Simulator;
  // shard lanes are the instance's own team, inside that ownership).
  std::unique_ptr<app::EclipseInstance> inst_;
  std::string shape_;  ///< Config::toString() + lane count of the live instance

  mutable std::mutex stats_mu_;
  WorkerStats stats_;

  std::thread thread_;  // last member: starts after everything is ready
};

}  // namespace eclipse::farm
