#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "eclipse/app/instance.hpp"
#include "eclipse/farm/job.hpp"
#include "eclipse/farm/job_queue.hpp"
#include "eclipse/farm/workload_cache.hpp"

namespace eclipse::farm {

/// Execution counters of one worker (snapshot; host-side quantities).
struct WorkerStats {
  int index = -1;
  std::uint64_t jobs = 0;
  std::uint64_t completed = 0;  ///< status == Completed
  std::uint64_t failed = 0;     ///< Incomplete or Error
  std::uint64_t reused = 0;     ///< jobs served by a recycled instance
  std::uint64_t cold_builds = 0;  ///< jobs that built a fresh instance
  std::uint64_t supervised_jobs = 0;  ///< jobs run under heartbeat slicing
  std::uint64_t abandoned = 0;  ///< runs whose job the Supervisor claimed away
  bool retired = false;         ///< replaced by the Supervisor (zombie)
  double busy_ms = 0.0;     ///< wall time spent inside jobs
  double build_ms = 0.0;    ///< wall time constructing instances (cold path)
  double recycle_ms = 0.0;  ///< wall time in teardown-settle-recycle (reuse path)
};

/// The job a worker is executing right now, shared with the Supervisor.
///
/// Ownership protocol: exactly one party — the worker on normal completion,
/// the Supervisor on a declared hang — wins the `claimed` CAS and from then
/// on exclusively owns the completion of `pj` (in particular its promise).
/// The loser never touches the promise again. The hung worker thread may
/// still be *reading* `pj.job` mid-simulation, so a claiming Supervisor
/// copies the Job and only moves the promise (which the worker, having
/// lost, will not touch); it must never move or mutate `pj.job` itself.
struct InFlight {
  PendingJob pj;
  std::chrono::steady_clock::time_point started{};
  double supervise_ms = 0.0;  ///< copy of pj.job.supervise_ms (lock-free read)
  std::atomic<bool> supervised{false};  ///< heartbeats armed (post-prep)
  std::atomic<std::int64_t> last_beat_ns{0};  ///< steady_clock ns of last beat
  std::atomic<bool> claimed{false};

  /// One-shot completion claim; true for exactly one caller.
  bool tryClaim() {
    bool expected = false;
    return claimed.compare_exchange_strong(expected, true, std::memory_order_acq_rel);
  }

  void beat() {
    last_beat_ns.store(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count(),
        std::memory_order_release);
  }
};

/// One farm worker: a host thread owning a private Simulator +
/// EclipseInstance, pulling jobs from the shared queue until it closes.
///
/// Instance reuse: after a clean job the instance is recycled (drain /
/// teardown / EclipseInstance::recycle()) and kept for the next job with
/// the same `Config` shape — bit-identical to a cold build by
/// construction. The worker falls back to a cold rebuild when the shape
/// changes, when the previous job armed faults or watchdogs, latched any
/// fault or stall, ended incomplete, or threw: auditing residual state is
/// never cheaper than rebuilding, and isolation must hold regardless.
///
/// Supervision: a job with `supervise_ms > 0` runs in bounded simulation
/// slices with a heartbeat published between slices. Slicing is
/// bit-identical to a single run by the Simulator::run(until) contract
/// (events at `until` execute; a resumed run continues the same dispatch
/// sequence), so supervised and unsupervised runs of a job agree exactly —
/// and unsupervised jobs take the original single-call path, keeping the
/// unarmed overhead at zero. A worker whose job is claimed away abandons
/// the run at the next slice boundary, discards its result and retires its
/// instance; `retire()` logically detaches the worker (it exits at the
/// next boundary instead of being destroyed mid-run).
class Worker {
 public:
  /// Terminal-result hand-off to the farm: the callee dispositions the
  /// attempt (deliver, retry, or quarantine) and owns the promise. Called
  /// only by the claim winner.
  using FinishFn = std::function<void(std::shared_ptr<InFlight>, JobResult)>;

  /// `max_lanes` caps the shard lanes any one job may be granted (the
  /// farm's lane-thread budget divided among the workers; >= 1).
  Worker(int index, JobQueue& queue, WorkloadCache& cache, std::uint32_t max_lanes,
         FinishFn on_finish);
  ~Worker() { join(); }

  Worker(const Worker&) = delete;
  Worker& operator=(const Worker&) = delete;

  /// Blocks until the worker thread exits (the queue must be closed or the
  /// worker retired). Idempotent and thread-safe.
  void join();

  /// Logical detach: the worker stops pulling jobs and exits at its next
  /// slice/pop boundary. Used by the Supervisor when replacing a hung
  /// worker — the thread is joined later (zombie list), never destroyed
  /// while possibly still inside the simulator.
  void retire();
  [[nodiscard]] bool isRetired() const { return retired_.load(std::memory_order_acquire); }

  [[nodiscard]] int index() const { return index_; }

  /// Snapshot of the job currently executing (null when idle). The
  /// Supervisor uses this for hang detection; see InFlight for the
  /// ownership protocol.
  [[nodiscard]] std::shared_ptr<InFlight> inflight() const;

  [[nodiscard]] WorkerStats stats() const;

 private:
  /// Thrown out of the run loop when the Supervisor claimed the job away.
  struct Abandoned {};

  void threadMain();
  JobResult runJob(InFlight& fl);
  /// Scheduled (adaptive multi-segment) decode path: one multi-mode
  /// DecodeApp, a live switchSegment transition at every boundary.
  void runScheduled(InFlight& fl, JobResult& r);
  /// Runs the simulation to `budget_end`: one call when unsupervised,
  /// bounded slices with heartbeats when supervised. Returns sim.now() at
  /// stop. Throws Abandoned when the job was claimed away mid-run.
  sim::Cycle runToBudget(InFlight& fl, sim::Cycle budget_end);
  /// Failure-cause classification of a finished (non-throwing) run.
  static JobError classifyRun(const Job& job, const JobResult& r, bool all_done,
                              sim::Cycle ran);
  /// Chaos hook: wedge (sleep without heartbeating) per Job::chaos. Throws
  /// Abandoned when the Supervisor claims the job away during the wedge.
  void injectHostHang(InFlight& fl);
  /// Reuses the recycled instance when the Config shape matches, builds a
  /// cold one otherwise; records the choice in `r` and the stats.
  void acquireInstance(const Job& job, JobResult& r);
  /// Quiesce/teardown the finished job and recycle the instance for
  /// reuse; on any doubt, retire the instance (next job builds cold).
  void retireOrRecycle(bool healthy);
  /// Simulated-cycle stop point for the job: min(deadline, max_cycles)
  /// past `c0`, kForever when unbounded.
  static sim::Cycle budgetEnd(const Job& job, sim::Cycle c0);

  const int index_;
  JobQueue& queue_;
  WorkloadCache& cache_;
  const std::uint32_t max_lanes_;
  FinishFn on_finish_;
  std::atomic<bool> retired_{false};

  // Owned by the worker thread exclusively (one thread per Simulator;
  // shard lanes are the instance's own team, inside that ownership).
  std::unique_ptr<app::EclipseInstance> inst_;
  std::string shape_;  ///< Config::toString() + lane count of the live instance

  mutable std::mutex inflight_mu_;
  std::shared_ptr<InFlight> inflight_;

  mutable std::mutex stats_mu_;
  WorkerStats stats_;

  mutable std::mutex join_mu_;  ///< serializes join() callers
  std::thread thread_;          // last member: starts after everything is ready
};

}  // namespace eclipse::farm
