#include "eclipse/farm/workload_cache.hpp"

#include <sstream>

namespace eclipse::farm {

std::string WorkloadDesc::key() const {
  std::ostringstream os;
  os << width << 'x' << height << 'f' << frames << 's' << seed << 'q' << qscale << 'g' << gop_n
     << ',' << gop_m << 'd' << detail << 'n' << noise_level << 'm' << motion_speed;
  return os.str();
}

std::shared_ptr<const PreparedWorkload> WorkloadCache::get(const WorkloadDesc& desc) {
  std::promise<std::shared_ptr<const PreparedWorkload>> promise;
  Entry entry;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = entries_.try_emplace(desc.key());
    if (inserted) {
      it->second = promise.get_future().share();
      builder = true;
    }
    entry = it->second;
  }
  if (builder) {
    // Built outside the lock: other descriptors stay available while this
    // one generates, and requesters of the same key wait on the future.
    auto w = std::make_shared<PreparedWorkload>();
    w->video.width = desc.width;
    w->video.height = desc.height;
    w->video.frames = desc.frames;
    w->video.seed = desc.seed;
    w->video.detail = desc.detail;
    w->video.noise_level = desc.noise_level;
    w->video.motion_speed = desc.motion_speed;
    w->frames = media::generateVideo(w->video);
    w->codec.width = desc.width;
    w->codec.height = desc.height;
    w->codec.qscale = desc.qscale;
    w->codec.gop = media::GopStructure{desc.gop_n, desc.gop_m};
    media::Encoder enc(w->codec);
    w->bitstream = enc.encode(w->frames);
    w->golden = enc.reconstructed();
    w->macroblocks_per_clip = static_cast<std::uint64_t>(desc.width / 16) *
                              static_cast<std::uint64_t>(desc.height / 16) *
                              static_cast<std::uint64_t>(desc.frames);
    promise.set_value(std::move(w));
  }
  return entry.get();
}

std::size_t WorkloadCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace eclipse::farm
