#include "eclipse/farm/worker.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <vector>

#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/encode_app.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/media/metrics.hpp"

namespace eclipse::farm {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Simulated-cycle allowance for draining residual events after a job
/// (parked control loops, in-flight putspaces). Generous: a healthy
/// torn-down graph settles in a few hundred cycles.
constexpr sim::Cycle kSettleCap = 1'000'000;

/// Slice length of a supervised run: big enough that the heartbeat load
/// is negligible (a decode job is a handful of slices), small enough that
/// a heartbeat lands every few host milliseconds on any sane config.
constexpr sim::Cycle kBeatSlice = 32'768;

/// One application instantiated on the worker's instance for the current
/// job, kept alive across the run.
struct RunningApp {
  AppKind kind = AppKind::Decode;
  std::shared_ptr<const PreparedWorkload> w;
  std::unique_ptr<app::DecodeApp> dec;
  std::unique_ptr<app::EncodeApp> enc;

  [[nodiscard]] bool done() const { return dec ? dec->done() : enc->done(); }
  [[nodiscard]] app::AppHandle& handle() { return dec ? dec->handle() : enc->handle(); }
};

/// Buffer shapes of the farm's decode mode family. "sd" is the default
/// (pinned) decode graph; "hd" widens the FIFOs for higher-rate segments,
/// so an sd<->hd boundary exercises the stream-rebinding transition path.
app::DecodeAppConfig decodeModeConfig(const std::string& mode) {
  if (mode == "sd") return {};
  if (mode == "hd") {
    app::DecodeAppConfig cfg;
    cfg.coef_buffer = 6144;
    cfg.blocks_buffer = 3072;
    cfg.res_buffer = 3072;
    cfg.pix_buffer = 3072;
    return cfg;
  }
  throw std::invalid_argument("unknown decode mode in schedule: " + mode);
}

}  // namespace

Worker::Worker(int index, JobQueue& queue, WorkloadCache& cache, std::uint32_t max_lanes,
               FinishFn on_finish)
    : index_(index),
      queue_(queue),
      cache_(cache),
      max_lanes_(std::max<std::uint32_t>(1, max_lanes)),
      on_finish_(std::move(on_finish)) {
  stats_.index = index;
  thread_ = std::thread([this] { threadMain(); });
}

void Worker::join() {
  std::lock_guard<std::mutex> lock(join_mu_);
  if (thread_.joinable()) thread_.join();
}

void Worker::retire() {
  retired_.store(true, std::memory_order_release);
  // A retiree idling in pop() must be kicked awake to notice the flag
  // (shrinking resize); a hung one ignores the notify, which is fine.
  queue_.wake();
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.retired = true;
}

std::shared_ptr<InFlight> Worker::inflight() const {
  std::lock_guard<std::mutex> lock(inflight_mu_);
  return inflight_;
}

WorkerStats Worker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Worker::threadMain() {
  while (!retired_.load(std::memory_order_acquire)) {
    auto popped = queue_.pop(&retired_);
    if (!popped) break;
    auto fl = std::make_shared<InFlight>();
    fl->pj = std::move(*popped);
    fl->started = Clock::now();
    fl->supervise_ms = fl->pj.job.supervise_ms;
    fl->beat();
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_ = fl;
    }
    const Clock::time_point t0 = Clock::now();
    JobResult r = runJob(*fl);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.reset();
    }
    if (!fl->tryClaim()) {
      // The Supervisor declared this worker hung and owns the job's
      // completion now: whatever this run produced is void (the retry will
      // recompute the identical simulated result). The abandon path
      // already retired the instance; this thread exits on `retired_`.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.abandoned;
      continue;
    }
    r.id = fl->pj.id;
    r.name = fl->pj.job.name;
    r.worker = index_;
    r.wall_ms = msSince(t0);
    r.latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - fl->pj.submitted).count();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.jobs;
      r.status == JobStatus::Completed ? ++stats_.completed : ++stats_.failed;
      stats_.busy_ms += r.wall_ms;
    }
    // Farm disposition (deliver / retry / quarantine) owns the promise
    // from here; metrics are updated before the future resolves.
    on_finish_(std::move(fl), std::move(r));
  }
}

sim::Cycle Worker::budgetEnd(const Job& job, sim::Cycle c0) {
  sim::Cycle cap = job.max_cycles;
  if (job.deadline > 0 && (cap == 0 || job.deadline < cap)) cap = job.deadline;
  if (cap == 0 || c0 > sim::Simulator::kForever - cap) return sim::Simulator::kForever;
  return c0 + cap;
}

JobError Worker::classifyRun(const Job& job, const JobResult& r, bool all_done,
                             sim::Cycle ran) {
  if (all_done) return JobError::None;
  // The deadline is what stopped the run: the budget was clamped to it, so
  // reaching it is exact (same cycle on every worker, every attempt).
  if (job.deadline > 0 && ran >= job.deadline) return JobError::DeadlineExceeded;
  if (r.faults_latched > 0) return JobError::FaultLatched;
  return JobError::Stall;
}

sim::Cycle Worker::runToBudget(InFlight& fl, sim::Cycle budget_end) {
  sim::Simulator& sim = inst_->simulator();
  // Unsupervised jobs take the original single-call path: zero overhead.
  if (!fl.supervised.load(std::memory_order_relaxed)) return inst_->run(budget_end);
  // Supervised: bounded slices with a heartbeat between them. Bit-identical
  // to the single call — Simulator::run(until) executes events *at* `until`
  // and a resumed run continues the same dispatch sequence, so the slice
  // boundaries are invisible to the simulation (asserted by the pin tests).
  sim::Cycle now = sim.now();
  for (;;) {
    const sim::Cycle next = budget_end - now > kBeatSlice ? now + kBeatSlice : budget_end;
    now = inst_->run(next);
    fl.beat();
    if (fl.claimed.load(std::memory_order_acquire)) throw Abandoned{};
    if (inst_->pendingApps() <= 0) break;
    if (now >= budget_end) break;
    if (sim.quiescent()) break;
  }
  return now;
}

void Worker::injectHostHang(InFlight& fl) {
  const HostHangSpec& h = fl.pj.job.chaos;
  if (h.hang_ms <= 0.0 || fl.pj.attempt > h.attempts) return;
  // Wedge without heartbeating. Sleeping in chunks lets the abandoned
  // thread notice the claim and exit promptly — the Supervisor has already
  // declared it hung either way (no beat landed).
  const auto until = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double, std::milli>(h.hang_ms));
  while (Clock::now() < until) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    if (fl.claimed.load(std::memory_order_acquire)) throw Abandoned{};
  }
}

JobResult Worker::runJob(InFlight& fl) {
  const Job& job = fl.pj.job;
  JobResult r;
  try {
    if (!job.schedule.empty()) {
      runScheduled(fl, r);
      return r;
    }

    // Workload preparation first (host-side; cache hit after the first
    // job with a given descriptor), so instance state is untouched if the
    // descriptor is degenerate.
    std::vector<std::shared_ptr<const PreparedWorkload>> prepared;
    prepared.reserve(job.apps.size());
    for (const AppSpec& s : job.apps) prepared.push_back(cache_.get(s.workload));

    acquireInstance(job, r);

    // Supervision arms only now: preparation may legitimately block on
    // another worker's cache build, and a cold instance build is real
    // work — neither is a hang.
    if (job.supervise_ms > 0.0) {
      fl.beat();
      fl.supervised.store(true, std::memory_order_release);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.supervised_jobs;
    }
    injectHostHang(fl);

    sim::Simulator& sim = inst_->simulator();
    const sim::Cycle c0 = sim.now();
    const std::uint64_t e0 = sim.eventsDispatched();

    std::vector<RunningApp> apps;
    apps.reserve(job.apps.size());
    for (std::size_t i = 0; i < job.apps.size(); ++i) {
      RunningApp ra;
      ra.kind = job.apps[i].kind;
      ra.w = prepared[i];
      if (ra.kind == AppKind::Decode) {
        ra.dec = std::make_unique<app::DecodeApp>(*inst_, ra.w->bitstream);
      } else {
        ra.enc = std::make_unique<app::EncodeApp>(*inst_, ra.w->frames, ra.w->codec);
      }
      apps.push_back(std::move(ra));
    }

    const bool armed = !job.faults.faults.empty();
    if (armed) inst_->armFaults(job.faults);
    if (job.watchdog_timeout > 0) inst_->armWatchdogs(job.watchdog_timeout);

    const sim::Cycle end = runToBudget(fl, budgetEnd(job, c0));
    r.sim_cycles = end - c0;
    r.sim_events = sim.eventsDispatched() - e0;

    bool all_done = true;
    for (RunningApp& ra : apps) all_done = all_done && ra.done();
    r.status = all_done ? JobStatus::Completed : JobStatus::Incomplete;
    if (!all_done) r.quiescence = app::quiescenceName(inst_->classifyQuiescence());

    // Measurements and verification (health before teardown: the fault
    // and stall registers live in the rows teardown resets).
    bool decode_exact = true;
    double min_psnr = std::numeric_limits<double>::infinity();
    bool any_encode = false;
    for (RunningApp& ra : apps) {
      const app::AppHealth h = ra.handle().health();
      r.faults_latched += h.faults.size();
      r.stalls_latched += h.stalls.size();
      if (ra.kind == AppKind::Decode) {
        if (!ra.done()) {
          decode_exact = false;
          continue;
        }
        r.macroblocks += ra.dec->macroblocksDecoded();
        r.frames_dropped += ra.dec->framesDropped();
        if (job.verify) {
          const auto out = ra.dec->frames();
          bool ok = out.size() == ra.w->golden.size();
          for (std::size_t i = 0; ok && i < out.size(); ++i) ok = out[i] == ra.w->golden[i];
          decode_exact = decode_exact && ok;
        }
      } else {
        any_encode = true;
        if (!ra.done()) continue;
        r.macroblocks += ra.w->macroblocks_per_clip;
        if (job.verify) {
          media::Decoder check;
          const auto out = check.decode(ra.enc->bitstream());
          min_psnr = std::min(min_psnr, media::averagePsnr(ra.w->frames, out));
        }
      }
    }
    r.bit_exact = job.verify && all_done && decode_exact;
    r.psnr_db = any_encode && job.verify && all_done ? min_psnr : 0.0;
    if (armed) r.fault_triggers = inst_->faults().triggerTotal();
    r.cause = classifyRun(job, r, all_done, r.sim_cycles);

    // Quiesce and tear down so the instance can be recycled. Anything
    // suspicious retires the instance instead — correctness over reuse.
    bool healthy = all_done && !armed && job.watchdog_timeout == 0 &&
                   r.faults_latched == 0 && r.stalls_latched == 0;
    const Clock::time_point tr = Clock::now();
    if (healthy) {
      if (!sim.quiescent()) inst_->run(sim.now() + kSettleCap);
      healthy = sim.quiescent();
      if (healthy) {
        for (RunningApp& ra : apps) ra.handle().teardown();
      }
    }
    retireOrRecycle(healthy);
    if (healthy) {
      const double recycle_ms = msSince(tr);
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.recycle_ms += recycle_ms;
    }
  } catch (const Abandoned&) {
    // Claimed away mid-run: the instance is mid-simulation and must not
    // be reused. The result is discarded by threadMain (claim lost).
    retireOrRecycle(false);
  } catch (const std::exception& e) {
    r.status = JobStatus::Error;
    r.cause = JobError::Config;
    r.error = e.what();
    retireOrRecycle(false);
  }
  return r;
}

void Worker::runScheduled(InFlight& fl, JobResult& r) {
  const Job& job = fl.pj.job;
  // Per-segment prepared workloads (host-side; the cache is shared, so a
  // schedule reusing one descriptor pays its preparation once).
  std::vector<std::shared_ptr<const PreparedWorkload>> segs;
  segs.reserve(job.schedule.size());
  for (const ModeSegment& s : job.schedule) segs.push_back(cache_.get(s.workload));

  // The decode mode family: distinct mode names in first-seen order, so
  // the first segment's mode is the one the constructor applies.
  std::vector<app::DecodeApp::Mode> modes;
  for (const ModeSegment& s : job.schedule) {
    bool seen = false;
    for (const app::DecodeApp::Mode& m : modes) seen = seen || m.first == s.mode;
    if (!seen) modes.push_back({s.mode, decodeModeConfig(s.mode)});
  }

  acquireInstance(job, r);

  if (job.supervise_ms > 0.0) {
    fl.beat();
    fl.supervised.store(true, std::memory_order_release);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.supervised_jobs;
  }
  injectHostHang(fl);

  sim::Simulator& sim = inst_->simulator();
  const sim::Cycle c0 = sim.now();
  const std::uint64_t e0 = sim.eventsDispatched();

  const bool armed = !job.faults.faults.empty();
  if (armed) inst_->armFaults(job.faults);
  if (job.watchdog_timeout > 0) inst_->armWatchdogs(job.watchdog_timeout);

  app::DecodeApp dec(*inst_, segs.front()->bitstream, modes);

  const sim::Cycle budget = budgetEnd(job, c0);

  // Decode each segment to completion, verify it against its own golden
  // frames while they are still current, then transition live into the
  // next segment's mode — the application is never torn down mid-job.
  bool all_exact = true;
  bool completed = true;
  for (std::size_t i = 0; i < job.schedule.size(); ++i) {
    runToBudget(fl, budget);
    if (!dec.done()) {
      completed = false;
      break;
    }
    if (job.verify) {
      const auto out = dec.frames();
      bool ok = out.size() == segs[i]->golden.size();
      for (std::size_t f = 0; ok && f < out.size(); ++f) ok = out[f] == segs[i]->golden[f];
      all_exact = all_exact && ok;
    }
    if (i + 1 < job.schedule.size()) {
      const app::TransitionStats st =
          dec.switchSegment(job.schedule[i + 1].mode, segs[i + 1]->bitstream);
      ++r.mode_switches;
      r.switch_mmio_writes += st.mmio_writes;
    }
  }
  r.sim_cycles = sim.now() - c0;
  r.sim_events = sim.eventsDispatched() - e0;
  r.status = completed ? JobStatus::Completed : JobStatus::Incomplete;
  if (!completed) r.quiescence = app::quiescenceName(inst_->classifyQuiescence());

  const app::AppHealth h = dec.handle().health();
  r.faults_latched = h.faults.size();
  r.stalls_latched = h.stalls.size();
  r.macroblocks = dec.macroblocksDecoded();  // cumulative across segments
  r.frames_dropped = dec.framesDropped();
  r.bit_exact = job.verify && completed && all_exact;
  if (armed) r.fault_triggers = inst_->faults().triggerTotal();
  r.cause = classifyRun(job, r, completed, r.sim_cycles);

  bool healthy = completed && !armed && job.watchdog_timeout == 0 &&
                 r.faults_latched == 0 && r.stalls_latched == 0;
  const Clock::time_point tr = Clock::now();
  if (healthy) {
    if (!sim.quiescent()) inst_->run(sim.now() + kSettleCap);
    healthy = sim.quiescent();
    if (healthy) dec.handle().teardown();
  }
  retireOrRecycle(healthy);
  if (healthy) {
    const double recycle_ms = msSince(tr);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.recycle_ms += recycle_ms;
  }
}

void Worker::acquireInstance(const Job& job, JobResult& r) {
  // Grant the requested shard lanes up to the farm's per-worker budget.
  // Deterministic (pure function of job + farm options) and contract-safe:
  // the sharded kernel is bit-identical to serial, so the clamp can never
  // move a simulated result.
  const std::uint32_t lanes =
      std::clamp<std::uint32_t>(job.shards == 0 ? 1 : job.shards, 1, max_lanes_);
  // Reuse the recycled instance only for an identical parameter shape AND
  // lane count: setShardCount demands a pristine simulator when the count
  // changes, so mismatched lane counts always rebuild cold, while an equal
  // count re-applies the plan idempotently on the recycled instance.
  const std::string shape = job.config.toString() + "|shards=" + std::to_string(lanes);
  // Fault-armed jobs are fully isolated on both sides: they already retire
  // the instance afterwards (retireOrRecycle(false)), and they must also
  // *start* cold — FaultSpec::at_cycle windows (and bit-flip events) are
  // absolute simulator cycles, so running on a recycled instance whose
  // clock is already advanced would shift every injection window and break
  // the job-purity contract (retried storms would diverge per worker
  // history; the chaos gate pins this).
  const bool reuse = inst_ != nullptr && shape == shape_ && job.faults.faults.empty();
  if (reuse) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reused;
  } else {
    const Clock::time_point tb = Clock::now();
    inst_.reset();
    inst_ = std::make_unique<app::EclipseInstance>(app::InstanceParams::fromConfig(job.config));
    shape_ = shape;
    const double build_ms = msSince(tb);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cold_builds;
    stats_.build_ms += build_ms;
  }
  if (lanes > 1) inst_->applyShardPlan(app::ShardPlan{.shards = lanes});
  r.lanes = lanes;
  r.reused_instance = reuse;
}

void Worker::retireOrRecycle(bool healthy) {
  if (healthy && inst_ != nullptr && inst_->recycle()) return;
  inst_.reset();
  shape_.clear();
}

}  // namespace eclipse::farm
