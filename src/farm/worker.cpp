#include "eclipse/farm/worker.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <vector>

#include "eclipse/app/decode_app.hpp"
#include "eclipse/app/encode_app.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/media/metrics.hpp"

namespace eclipse::farm {

namespace {

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

/// Simulated-cycle allowance for draining residual events after a job
/// (parked control loops, in-flight putspaces). Generous: a healthy
/// torn-down graph settles in a few hundred cycles.
constexpr sim::Cycle kSettleCap = 1'000'000;

/// One application instantiated on the worker's instance for the current
/// job, kept alive across the run.
struct RunningApp {
  AppKind kind = AppKind::Decode;
  std::shared_ptr<const PreparedWorkload> w;
  std::unique_ptr<app::DecodeApp> dec;
  std::unique_ptr<app::EncodeApp> enc;

  [[nodiscard]] bool done() const { return dec ? dec->done() : enc->done(); }
  [[nodiscard]] app::AppHandle& handle() { return dec ? dec->handle() : enc->handle(); }
};

/// Buffer shapes of the farm's decode mode family. "sd" is the default
/// (pinned) decode graph; "hd" widens the FIFOs for higher-rate segments,
/// so an sd<->hd boundary exercises the stream-rebinding transition path.
app::DecodeAppConfig decodeModeConfig(const std::string& mode) {
  if (mode == "sd") return {};
  if (mode == "hd") {
    app::DecodeAppConfig cfg;
    cfg.coef_buffer = 6144;
    cfg.blocks_buffer = 3072;
    cfg.res_buffer = 3072;
    cfg.pix_buffer = 3072;
    return cfg;
  }
  throw std::invalid_argument("unknown decode mode in schedule: " + mode);
}

}  // namespace

Worker::Worker(int index, JobQueue& queue, WorkloadCache& cache, std::uint32_t max_lanes,
               CompletionFn on_complete)
    : index_(index),
      queue_(queue),
      cache_(cache),
      max_lanes_(std::max<std::uint32_t>(1, max_lanes)),
      on_complete_(std::move(on_complete)) {
  stats_.index = index;
  thread_ = std::thread([this] { threadMain(); });
}

void Worker::join() {
  if (thread_.joinable()) thread_.join();
}

WorkerStats Worker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void Worker::threadMain() {
  while (auto pj = queue_.pop()) {
    const Clock::time_point t0 = Clock::now();
    JobResult r = runJob(pj->job);
    r.id = pj->id;
    r.name = pj->job.name;
    r.worker = index_;
    r.wall_ms = msSince(t0);
    r.latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - pj->submitted).count();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.jobs;
      r.status == JobStatus::Completed ? ++stats_.completed : ++stats_.failed;
      stats_.busy_ms += r.wall_ms;
    }
    // Farm accounting first, so a caller observing the future immediately
    // afterwards sees metrics that already include this job.
    if (on_complete_) on_complete_(r);
    pj->promise.set_value(std::move(r));
  }
}

void Worker::acquireInstance(const Job& job, JobResult& r) {
  // Grant the requested shard lanes up to the farm's per-worker budget.
  // Deterministic (pure function of job + farm options) and contract-safe:
  // the sharded kernel is bit-identical to serial, so the clamp can never
  // move a simulated result.
  const std::uint32_t lanes =
      std::clamp<std::uint32_t>(job.shards == 0 ? 1 : job.shards, 1, max_lanes_);
  // Reuse the recycled instance only for an identical parameter shape AND
  // lane count: setShardCount demands a pristine simulator when the count
  // changes, so mismatched lane counts always rebuild cold, while an equal
  // count re-applies the plan idempotently on the recycled instance.
  const std::string shape = job.config.toString() + "|shards=" + std::to_string(lanes);
  const bool reuse = inst_ != nullptr && shape == shape_;
  if (reuse) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.reused;
  } else {
    const Clock::time_point tb = Clock::now();
    inst_.reset();
    inst_ = std::make_unique<app::EclipseInstance>(app::InstanceParams::fromConfig(job.config));
    shape_ = shape;
    const double build_ms = msSince(tb);
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.cold_builds;
    stats_.build_ms += build_ms;
  }
  if (lanes > 1) inst_->applyShardPlan(app::ShardPlan{.shards = lanes});
  r.lanes = lanes;
  r.reused_instance = reuse;
}

JobResult Worker::runJob(const Job& job) {
  JobResult r;
  try {
    if (!job.schedule.empty()) {
      runScheduled(job, r);
      return r;
    }

    // Workload preparation first (host-side; cache hit after the first
    // job with a given descriptor), so instance state is untouched if the
    // descriptor is degenerate.
    std::vector<std::shared_ptr<const PreparedWorkload>> prepared;
    prepared.reserve(job.apps.size());
    for (const AppSpec& s : job.apps) prepared.push_back(cache_.get(s.workload));

    acquireInstance(job, r);

    sim::Simulator& sim = inst_->simulator();
    const sim::Cycle c0 = sim.now();
    const std::uint64_t e0 = sim.eventsDispatched();

    std::vector<RunningApp> apps;
    apps.reserve(job.apps.size());
    for (std::size_t i = 0; i < job.apps.size(); ++i) {
      RunningApp ra;
      ra.kind = job.apps[i].kind;
      ra.w = prepared[i];
      if (ra.kind == AppKind::Decode) {
        ra.dec = std::make_unique<app::DecodeApp>(*inst_, ra.w->bitstream);
      } else {
        ra.enc = std::make_unique<app::EncodeApp>(*inst_, ra.w->frames, ra.w->codec);
      }
      apps.push_back(std::move(ra));
    }

    const bool armed = !job.faults.faults.empty();
    if (armed) inst_->armFaults(job.faults);
    if (job.watchdog_timeout > 0) inst_->armWatchdogs(job.watchdog_timeout);

    const sim::Cycle budget =
        job.max_cycles == 0 || c0 > sim::Simulator::kForever - job.max_cycles
            ? sim::Simulator::kForever
            : c0 + job.max_cycles;
    const sim::Cycle end = inst_->run(budget);
    r.sim_cycles = end - c0;
    r.sim_events = sim.eventsDispatched() - e0;

    bool all_done = true;
    for (RunningApp& ra : apps) all_done = all_done && ra.done();
    r.status = all_done ? JobStatus::Completed : JobStatus::Incomplete;
    if (!all_done) r.quiescence = app::quiescenceName(inst_->classifyQuiescence());

    // Measurements and verification (health before teardown: the fault
    // and stall registers live in the rows teardown resets).
    bool decode_exact = true;
    double min_psnr = std::numeric_limits<double>::infinity();
    bool any_encode = false;
    for (RunningApp& ra : apps) {
      const app::AppHealth h = ra.handle().health();
      r.faults_latched += h.faults.size();
      r.stalls_latched += h.stalls.size();
      if (ra.kind == AppKind::Decode) {
        if (!ra.done()) {
          decode_exact = false;
          continue;
        }
        r.macroblocks += ra.dec->macroblocksDecoded();
        r.frames_dropped += ra.dec->framesDropped();
        if (job.verify) {
          const auto out = ra.dec->frames();
          bool ok = out.size() == ra.w->golden.size();
          for (std::size_t i = 0; ok && i < out.size(); ++i) ok = out[i] == ra.w->golden[i];
          decode_exact = decode_exact && ok;
        }
      } else {
        any_encode = true;
        if (!ra.done()) continue;
        r.macroblocks += ra.w->macroblocks_per_clip;
        if (job.verify) {
          media::Decoder check;
          const auto out = check.decode(ra.enc->bitstream());
          min_psnr = std::min(min_psnr, media::averagePsnr(ra.w->frames, out));
        }
      }
    }
    r.bit_exact = job.verify && all_done && decode_exact;
    r.psnr_db = any_encode && job.verify && all_done ? min_psnr : 0.0;

    // Quiesce and tear down so the instance can be recycled. Anything
    // suspicious retires the instance instead — correctness over reuse.
    bool healthy = all_done && !armed && job.watchdog_timeout == 0 &&
                   r.faults_latched == 0 && r.stalls_latched == 0;
    const Clock::time_point tr = Clock::now();
    if (healthy) {
      if (!sim.quiescent()) inst_->run(sim.now() + kSettleCap);
      healthy = sim.quiescent();
      if (healthy) {
        for (RunningApp& ra : apps) ra.handle().teardown();
      }
    }
    retireOrRecycle(healthy);
    if (healthy) {
      const double recycle_ms = msSince(tr);
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.recycle_ms += recycle_ms;
    }
  } catch (const std::exception& e) {
    r.status = JobStatus::Error;
    r.error = e.what();
    retireOrRecycle(false);
  }
  return r;
}

void Worker::runScheduled(const Job& job, JobResult& r) {
  // Per-segment prepared workloads (host-side; the cache is shared, so a
  // schedule reusing one descriptor pays its preparation once).
  std::vector<std::shared_ptr<const PreparedWorkload>> segs;
  segs.reserve(job.schedule.size());
  for (const ModeSegment& s : job.schedule) segs.push_back(cache_.get(s.workload));

  // The decode mode family: distinct mode names in first-seen order, so
  // the first segment's mode is the one the constructor applies.
  std::vector<app::DecodeApp::Mode> modes;
  for (const ModeSegment& s : job.schedule) {
    bool seen = false;
    for (const app::DecodeApp::Mode& m : modes) seen = seen || m.first == s.mode;
    if (!seen) modes.push_back({s.mode, decodeModeConfig(s.mode)});
  }

  acquireInstance(job, r);
  sim::Simulator& sim = inst_->simulator();
  const sim::Cycle c0 = sim.now();
  const std::uint64_t e0 = sim.eventsDispatched();

  const bool armed = !job.faults.faults.empty();
  if (armed) inst_->armFaults(job.faults);
  if (job.watchdog_timeout > 0) inst_->armWatchdogs(job.watchdog_timeout);

  app::DecodeApp dec(*inst_, segs.front()->bitstream, modes);

  const sim::Cycle budget =
      job.max_cycles == 0 || c0 > sim::Simulator::kForever - job.max_cycles
          ? sim::Simulator::kForever
          : c0 + job.max_cycles;

  // Decode each segment to completion, verify it against its own golden
  // frames while they are still current, then transition live into the
  // next segment's mode — the application is never torn down mid-job.
  bool all_exact = true;
  bool completed = true;
  for (std::size_t i = 0; i < job.schedule.size(); ++i) {
    inst_->run(budget);
    if (!dec.done()) {
      completed = false;
      break;
    }
    if (job.verify) {
      const auto out = dec.frames();
      bool ok = out.size() == segs[i]->golden.size();
      for (std::size_t f = 0; ok && f < out.size(); ++f) ok = out[f] == segs[i]->golden[f];
      all_exact = all_exact && ok;
    }
    if (i + 1 < job.schedule.size()) {
      const app::TransitionStats st =
          dec.switchSegment(job.schedule[i + 1].mode, segs[i + 1]->bitstream);
      ++r.mode_switches;
      r.switch_mmio_writes += st.mmio_writes;
    }
  }
  r.sim_cycles = sim.now() - c0;
  r.sim_events = sim.eventsDispatched() - e0;
  r.status = completed ? JobStatus::Completed : JobStatus::Incomplete;
  if (!completed) r.quiescence = app::quiescenceName(inst_->classifyQuiescence());

  const app::AppHealth h = dec.handle().health();
  r.faults_latched = h.faults.size();
  r.stalls_latched = h.stalls.size();
  r.macroblocks = dec.macroblocksDecoded();  // cumulative across segments
  r.frames_dropped = dec.framesDropped();
  r.bit_exact = job.verify && completed && all_exact;

  bool healthy = completed && !armed && job.watchdog_timeout == 0 &&
                 r.faults_latched == 0 && r.stalls_latched == 0;
  const Clock::time_point tr = Clock::now();
  if (healthy) {
    if (!sim.quiescent()) inst_->run(sim.now() + kSettleCap);
    healthy = sim.quiescent();
    if (healthy) dec.handle().teardown();
  }
  retireOrRecycle(healthy);
  if (healthy) {
    const double recycle_ms = msSince(tr);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.recycle_ms += recycle_ms;
  }
}

void Worker::retireOrRecycle(bool healthy) {
  if (healthy && inst_ != nullptr && inst_->recycle()) return;
  inst_.reset();
  shape_.clear();
}

}  // namespace eclipse::farm
