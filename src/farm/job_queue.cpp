#include "eclipse/farm/job_queue.hpp"

namespace eclipse::farm {

namespace {
using Clock = std::chrono::steady_clock;
}

Admission JobQueue::tryPush(PendingJob&& pj) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Admission::ShuttingDown;
    if (depthLocked() >= capacity_) return Admission::QueueFull;
    pj.queued = Clock::now();
    lanes_[static_cast<int>(pj.lane())].push_back(std::move(pj));
  }
  not_empty_.notify_one();
  return Admission::Accepted;
}

bool JobQueue::waitPush(PendingJob&& pj) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || depthLocked() < capacity_; });
    if (closed_) return false;
    pj.queued = Clock::now();
    lanes_[static_cast<int>(pj.lane())].push_back(std::move(pj));
  }
  not_empty_.notify_one();
  return true;
}

Admission JobQueue::waitPushFor(PendingJob&& pj, std::chrono::milliseconds timeout) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_full_.wait_for(
        lock, timeout, [&] { return closed_ || depthLocked() < capacity_; });
    if (closed_) return Admission::ShuttingDown;
    if (!ready) return Admission::QueueFull;  // timed out, job untouched
    pj.queued = Clock::now();
    lanes_[static_cast<int>(pj.lane())].push_back(std::move(pj));
  }
  not_empty_.notify_one();
  return Admission::Accepted;
}

std::optional<PendingJob> JobQueue::pop(const std::atomic<bool>* stop) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] {
    return closed_ || depthLocked() > 0 ||
           (stop != nullptr && stop->load(std::memory_order_acquire));
  });
  for (auto& lane : lanes_) {
    if (!lane.empty()) {
      PendingJob pj = std::move(lane.front());
      lane.pop_front();
      lock.unlock();
      not_full_.notify_one();
      return pj;
    }
  }
  return std::nullopt;  // closed and drained, or the popper is retiring
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

void JobQueue::wake() { not_empty_.notify_all(); }

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depthLocked();
}

std::array<LaneGauge, 3> JobQueue::gauges() const {
  const Clock::time_point now = Clock::now();
  std::array<LaneGauge, 3> g{};
  std::lock_guard<std::mutex> lock(mu_);
  for (int i = 0; i < 3; ++i) {
    g[static_cast<std::size_t>(i)].depth = lanes_[i].size();
    if (!lanes_[i].empty()) {
      // FIFO within a lane: the head is the oldest resident.
      g[static_cast<std::size_t>(i)].oldest_ms =
          std::chrono::duration<double, std::milli>(now - lanes_[i].front().queued).count();
    }
  }
  return g;
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace eclipse::farm
