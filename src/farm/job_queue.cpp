#include "eclipse/farm/job_queue.hpp"

namespace eclipse::farm {

Admission JobQueue::tryPush(PendingJob&& pj) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Admission::ShuttingDown;
    if (depthLocked() >= capacity_) return Admission::QueueFull;
    lanes_[static_cast<int>(pj.lane())].push_back(std::move(pj));
  }
  not_empty_.notify_one();
  return Admission::Accepted;
}

bool JobQueue::waitPush(PendingJob&& pj) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return closed_ || depthLocked() < capacity_; });
    if (closed_) return false;
    lanes_[static_cast<int>(pj.lane())].push_back(std::move(pj));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<PendingJob> JobQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || depthLocked() > 0; });
  for (auto& lane : lanes_) {
    if (!lane.empty()) {
      PendingJob pj = std::move(lane.front());
      lane.pop_front();
      lock.unlock();
      not_full_.notify_one();
      return pj;
    }
  }
  return std::nullopt;  // closed and drained
}

void JobQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

std::size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depthLocked();
}

bool JobQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

}  // namespace eclipse::farm
