#include "eclipse/coproc/fork.hpp"

#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/media/packets.hpp"

namespace eclipse::coproc {

sim::Task<void> ForkCoproc::step(sim::TaskId task, std::uint32_t /*task_info*/) {
  // Every consumer must have room before the input is consumed; otherwise
  // abort the step (slowest consumer throttles the multicast, exactly the
  // semantics of a Kahn stream with several readers).
  for (int out = 1; out <= fanout_; ++out) {
    if (!co_await shell_.getSpace(task, out, max_frame_)) co_return;
  }
  std::vector<std::uint8_t> pkt;
  if (co_await packet_io::tryRead(shell_, task, kIn, pkt) == packet_io::ReadStatus::Blocked) {
    co_return;
  }
  for (int out = 1; out <= fanout_; ++out) {
    co_await packet_io::write(shell_, task, out, pkt, /*wait=*/false);
  }
  ++packets_;
  if (packet_io::tagOf(pkt) == media::PacketTag::Eos) finishTask(task);
}

}  // namespace eclipse::coproc
