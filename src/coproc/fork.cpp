#include "eclipse/coproc/fork.hpp"

#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/media/packets.hpp"

namespace eclipse::coproc {

sim::Task<void> ForkCoproc::step(sim::TaskId task, std::uint32_t /*task_info*/) {
  // Every consumer must have room before the input is consumed; otherwise
  // abort the step (slowest consumer throttles the multicast, exactly the
  // semantics of a Kahn stream with several readers).
  for (int out = 1; out <= fanout_; ++out) {
    if (!co_await shell_.getSpace(task, out, max_frame_)) co_return;
  }
  const packet_io::Packet p = co_await packet_io::tryReadView(shell_, task, kIn);
  if (p.status == packet_io::ReadStatus::Blocked) co_return;
  // The committed view dies at the first write's suspension point, and the
  // packet is forwarded fanout times — stage it in the reusable buffer.
  pkt_.assign(p.bytes.begin(), p.bytes.end());
  for (int out = 1; out <= fanout_; ++out) {
    co_await packet_io::write(shell_, task, out, pkt_, /*wait=*/false);
  }
  ++packets_;
  if (packet_io::tagOf(pkt_) == media::PacketTag::Eos) finishTask(task);
}

}  // namespace eclipse::coproc
