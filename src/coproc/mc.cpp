#include "eclipse/coproc/mc.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/media/kernels.hpp"
#include "eclipse/media/motion.hpp"

namespace eclipse::coproc {

namespace {

struct PlaneGeom {
  sim::Addr offset;  // from slot base
  int stride;
  int width;
  int height;
};

PlaneGeom planeGeom(const media::SeqHeader& sh, int plane) {
  const int w = sh.width;
  const int h = sh.height;
  if (plane == 0) return PlaneGeom{0, w, w, h};
  const sim::Addr luma = static_cast<sim::Addr>(w) * h;
  const sim::Addr chroma = static_cast<sim::Addr>(w / 2) * (h / 2);
  if (plane == 1) return PlaneGeom{luma, w / 2, w / 2, h / 2};
  return PlaneGeom{luma + chroma, w / 2, w / 2, h / 2};
}

int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

}  // namespace

void McCoproc::configureTask(sim::TaskId task, const McTaskConfig& cfg) {
  TaskState st;
  st.cfg = cfg;
  states_[task] = std::move(st);
}

sim::Addr McCoproc::slotBase(const TaskState& st, std::int32_t slot) const {
  if (slot < 0) throw std::logic_error("McCoproc: prediction from a missing reference slot");
  return st.cfg.frame_store_base +
         static_cast<sim::Addr>(slot) * frameSlotBytes(st.seq);
}

sim::Task<void> McCoproc::fetchRegion(TaskState& st, std::int32_t slot, int plane, int x0, int y0,
                                      int w, int h, std::vector<std::uint8_t>& out) {
  const PlaneGeom g = planeGeom(st.seq, plane);
  const sim::Addr base = slotBase(st, slot) + g.offset;
  out.resize(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));

  // Timing: one 2D burst over the system bus of the region size.
  co_await dram_.touchRead(out.size(), static_cast<int>(shell_.id()));

  // Function: clamped per-sample gather (replicated frame edges, exactly
  // like motion::sampleHalfPel's full-pel clamping).
  const auto view = dram_.storage().view();
  for (int y = 0; y < h; ++y) {
    const int sy = clampi(y0 + y, 0, g.height - 1);
    for (int x = 0; x < w; ++x) {
      const int sx = clampi(x0 + x, 0, g.width - 1);
      out[static_cast<std::size_t>(y * w + x)] =
          view[static_cast<std::size_t>(base + static_cast<sim::Addr>(sy) * static_cast<sim::Addr>(g.stride) +
                                        static_cast<sim::Addr>(sx))];
    }
  }
}

sim::Task<void> McCoproc::writeReconMb(TaskState& st, std::int32_t slot, int mb_x, int mb_y,
                                       const media::MbPixels& px) {
  const sim::Addr base = slotBase(st, slot);
  const PlaneGeom gy = planeGeom(st.seq, 0);
  const PlaneGeom gcb = planeGeom(st.seq, 1);
  const PlaneGeom gcr = planeGeom(st.seq, 2);
  auto storage = dram_.storage().view();

  // Function: scatter the rows into the frame slot.
  for (int y = 0; y < media::kMbSize; ++y) {
    const sim::Addr row = base + gy.offset +
                          static_cast<sim::Addr>(mb_y * media::kMbSize + y) * static_cast<sim::Addr>(gy.stride) +
                          static_cast<sim::Addr>(mb_x * media::kMbSize);
    std::copy_n(px.y.begin() + y * media::kMbSize, media::kMbSize,
                storage.begin() + static_cast<std::ptrdiff_t>(row));
  }
  for (int y = 0; y < 8; ++y) {
    const sim::Addr row_cb = base + gcb.offset +
                             static_cast<sim::Addr>(mb_y * 8 + y) * static_cast<sim::Addr>(gcb.stride) +
                             static_cast<sim::Addr>(mb_x * 8);
    const sim::Addr row_cr = base + gcr.offset +
                             static_cast<sim::Addr>(mb_y * 8 + y) * static_cast<sim::Addr>(gcr.stride) +
                             static_cast<sim::Addr>(mb_x * 8);
    std::copy_n(px.cb.begin() + y * 8, 8, storage.begin() + static_cast<std::ptrdiff_t>(row_cb));
    std::copy_n(px.cr.begin() + y * 8, 8, storage.begin() + static_cast<std::ptrdiff_t>(row_cr));
  }

  // Timing: three posted write bursts (Y, Cb, Cr). Writes go through a
  // write buffer, so the coprocessor stalls only for bus occupancy, not
  // for the off-chip access latency (reads cannot be posted).
  co_await dram_.bus().transfer(256, static_cast<int>(shell_.id()));
  co_await dram_.bus().transfer(64, static_cast<int>(shell_.id()));
  co_await dram_.bus().transfer(64, static_cast<int>(shell_.id()));
}

sim::Task<void> McCoproc::predictTimed(TaskState& st, const media::MbHeader& h,
                                       media::MbPixels& pred) {
  if (h.mode == media::MbMode::Intra) {
    pred.y.fill(128);
    pred.cb.fill(128);
    pred.cr.fill(128);
    co_return;
  }

  const int px = h.mb_x * media::kMbSize;
  const int py = h.mb_y * media::kMbSize;

  auto fetchOne = [&](std::int32_t slot, media::MotionVector mv,
                      media::MbPixels& out) -> sim::Task<void> {
    ++predictions_;
    // Luma 17x17 region at the floor of the half-pel coordinate.
    const int cx = 2 * px + mv.x;
    const int cy = 2 * py + mv.y;
    const int x0 = cx >> 1, fx = cx & 1;
    const int y0 = cy >> 1, fy = cy & 1;
    co_await fetchRegion(st, slot, 0, x0, y0, 17, 17, region_);
    // The fetched region is clamp-extended, so the whole 16x16 read is
    // in-bounds — straight into the vector interpolator.
    media::kernels::active().interp_16xh(out.y.data(), media::kMbSize, region_.data(), 17,
                                         media::kMbSize, fx, fy);
    // Chroma: the luma vector halved (truncation toward zero, MPEG-2).
    const int cvx = mv.x / 2;
    const int cvy = mv.y / 2;
    const int pcx = px / 2, pcy = py / 2;
    const int ccx = 2 * pcx + cvx, ccy = 2 * pcy + cvy;
    const int cx0 = ccx >> 1, cfx = ccx & 1;
    const int cy0 = ccy >> 1, cfy = ccy & 1;
    co_await fetchRegion(st, slot, 1, cx0, cy0, 9, 9, rcb_);
    co_await fetchRegion(st, slot, 2, cx0, cy0, 9, 9, rcr_);
    media::kernels::active().interp_8xh(out.cb.data(), 8, rcb_.data(), 9, 8, cfx, cfy);
    media::kernels::active().interp_8xh(out.cr.data(), 8, rcr_.data(), 9, 8, cfx, cfy);
  };

  // Reference slot selection mirrors the decoder: P pictures predict from
  // the most recent reference; B pictures use (prev, last) as (fwd, bwd).
  const std::int32_t fwd_slot =
      st.pic.type == media::FrameType::B ? st.refs.prev : st.refs.last;
  const std::int32_t bwd_slot = st.refs.last;

  switch (h.mode) {
    case media::MbMode::Forward:
      co_await fetchOne(fwd_slot, h.mv_fwd, pred);
      break;
    case media::MbMode::Backward:
      co_await fetchOne(bwd_slot, h.mv_bwd, pred);
      break;
    case media::MbMode::Bidirectional: {
      media::MbPixels a, b;
      co_await fetchOne(fwd_slot, h.mv_fwd, a);
      co_await fetchOne(bwd_slot, h.mv_bwd, b);
      media::motion::average(a.y, b.y, pred.y);
      media::motion::average(a.cb, b.cb, pred.cb);
      media::motion::average(a.cr, b.cr, pred.cr);
      break;
    }
    case media::MbMode::Intra:
      break;  // handled above
  }
}

sim::Task<void> McCoproc::decideMode(TaskState& st, const media::MbPixels& cur,
                                     media::MbHeader& h) {
  if (st.pic.type == media::FrameType::I) {
    h.mode = media::MbMode::Intra;
    co_return;
  }
  ++searches_;

  const int R = params_.search_range;
  const int S = 2 * R + 19;  // window edge: covers full search + half-pel refine
  const int px = h.mb_x * media::kMbSize;
  const int py = h.mb_y * media::kMbSize;
  const int wx0 = px - (R + 1);
  const int wy0 = py - (R + 1);

  // Half-pel candidate offset into a fetched window: every candidate the
  // search emits has mv + 2(R+1) >= 1, so >>1 is a plain floor and the
  // 16x16(+fraction) read stays inside the S x S window.
  auto winAt = [&](const std::vector<std::uint8_t>& win, int mvx, int mvy) {
    const int cx = mvx + 2 * (R + 1);
    const int cy = mvy + 2 * (R + 1);
    return win.data() + static_cast<std::ptrdiff_t>(cy >> 1) * S + (cx >> 1);
  };

  // SAD of a half-pel candidate against a fetched window.
  auto sadHalf = [&](const std::vector<std::uint8_t>& win, int mvx, int mvy) {
    return media::kernels::active().sad_16xh(cur.y.data(), media::kMbSize, winAt(win, mvx, mvy),
                                             S, media::kMbSize, (mvx + 2 * (R + 1)) & 1,
                                             (mvy + 2 * (R + 1)) & 1);
  };

  // Full-pel exhaustive search plus half-pel refinement in one window.
  struct Best {
    media::MotionVector mv;
    std::uint32_t sad = std::numeric_limits<std::uint32_t>::max();
  };
  int candidates = 0;
  auto searchWindow = [&](const std::vector<std::uint8_t>& win) {
    // The zero vector is evaluated first so that it wins SAD ties — the
    // same preference order as motion::search (keeps the window search
    // bit-identical with the functional encoder's full search).
    Best best{media::MotionVector{0, 0}, sadHalf(win, 0, 0)};
    ++candidates;
    for (int dy = -R; dy <= R; ++dy) {
      for (int dx = -R; dx <= R; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const std::uint32_t sad = sadHalf(win, 2 * dx, 2 * dy);
        ++candidates;
        if (sad < best.sad) {
          best = Best{media::MotionVector{static_cast<std::int16_t>(2 * dx),
                                          static_cast<std::int16_t>(2 * dy)},
                      sad};
        }
      }
    }
    if (params_.half_pel) {
      Best refined = best;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int mvx = best.mv.x + dx;
          const int mvy = best.mv.y + dy;
          const std::uint32_t sad = sadHalf(win, mvx, mvy);
          ++candidates;
          if (sad < refined.sad) {
            refined = Best{media::MotionVector{static_cast<std::int16_t>(mvx),
                                               static_cast<std::int16_t>(mvy)},
                           sad};
          }
        }
      }
      best = refined;
    }
    return best;
  };

  const std::int32_t fwd_slot =
      st.pic.type == media::FrameType::B ? st.refs.prev : st.refs.last;
  co_await fetchRegion(st, fwd_slot, 0, wx0, wy0, S, S, win_f_);
  const Best best_f = searchWindow(win_f_);

  Best best_b;
  std::uint32_t sad_bidi = std::numeric_limits<std::uint32_t>::max();
  if (st.pic.type == media::FrameType::B) {
    co_await fetchRegion(st, st.refs.last, 0, wx0, wy0, S, S, win_b_);
    best_b = searchWindow(win_b_);
    // Bidirectional: average of the two best predictions. Interpolate both
    // into scratch macroblocks, average, then a full-pel SAD.
    const auto& k = media::kernels::active();
    alignas(16) std::uint8_t pf[256], pb[256], avg[256];
    k.interp_16xh(pf, media::kMbSize, winAt(win_f_, best_f.mv.x, best_f.mv.y), S, media::kMbSize,
                  (best_f.mv.x + 2 * (R + 1)) & 1, (best_f.mv.y + 2 * (R + 1)) & 1);
    k.interp_16xh(pb, media::kMbSize, winAt(win_b_, best_b.mv.x, best_b.mv.y), S, media::kMbSize,
                  (best_b.mv.x + 2 * (R + 1)) & 1, (best_b.mv.y + 2 * (R + 1)) & 1);
    k.avg_u8(pf, pb, avg, 256);
    sad_bidi = k.sad_16xh(cur.y.data(), media::kMbSize, avg, media::kMbSize, media::kMbSize, 0, 0);
    ++candidates;
  }

  co_await sim_.delay(static_cast<sim::Cycle>(candidates) * params_.cycles_per_candidate);

  // Intra activity of the current macroblock (mean absolute deviation).
  // SAD against a constant row with ref_stride 0: vs zero it sums the
  // pixels, vs the mean it is exactly the activity sum.
  alignas(16) std::uint8_t mrow[media::kMbSize] = {};
  const std::uint32_t sum =
      media::kernels::active().sad_16xh(cur.y.data(), media::kMbSize, mrow, 0, media::kMbSize, 0, 0);
  const std::uint32_t mean = sum / 256;
  std::fill(std::begin(mrow), std::end(mrow), static_cast<std::uint8_t>(mean));
  const std::uint32_t activity =
      media::kernels::active().sad_16xh(cur.y.data(), media::kMbSize, mrow, 0, media::kMbSize, 0, 0);

  std::uint32_t best_sad = best_f.sad;
  media::MbMode mode = media::MbMode::Forward;
  if (st.pic.type == media::FrameType::B) {
    if (best_b.sad < best_sad) {
      best_sad = best_b.sad;
      mode = media::MbMode::Backward;
    }
    if (sad_bidi < best_sad) {
      best_sad = sad_bidi;
      mode = media::MbMode::Bidirectional;
    }
  }
  if (best_sad > activity) {
    h.mode = media::MbMode::Intra;
    co_return;
  }
  h.mode = mode;
  if (mode == media::MbMode::Forward || mode == media::MbMode::Bidirectional) h.mv_fwd = best_f.mv;
  if (mode == media::MbMode::Backward || mode == media::MbMode::Bidirectional) h.mv_bwd = best_b.mv;
}

void McCoproc::onPicHeader(TaskState& st, const media::PicHeader& ph) {
  if (st.prev_pic_was_ref) st.refs.rotate(st.write_slot);
  st.pic = ph;
  const bool is_ref = ph.type != media::FrameType::B;
  if (is_ref) st.write_slot = st.refs.pickFree(st.cfg.frame_store_slots);
  st.prev_pic_was_ref = is_ref;
  st.mb_index = 0;
}

sim::Task<void> McCoproc::step(sim::TaskId task, std::uint32_t /*task_info*/) {
  auto it = states_.find(task);
  if (it == states_.end()) throw std::logic_error("McCoproc: unconfigured task scheduled");
  TaskState& st = it->second;
  switch (st.cfg.kind) {
    case McTaskKind::DecodeRecon: co_await stepDecodeRecon(task, st); break;
    case McTaskKind::MotionEst: co_await stepMotionEst(task, st); break;
    case McTaskKind::EncodeRecon: co_await stepEncodeRecon(task, st); break;
  }
}

sim::Task<void> McCoproc::stepDecodeRecon(sim::TaskId task, TaskState& st) {
  if (!co_await shell_.getSpace(task, kOutPix, withCtl(kMaxPixelsFrame))) co_return;
  // Peeked views stay valid until the PutSpace at the end of the step, so
  // pass-through writes can stream straight out of the input FIFO.
  const packet_io::Packet hdr = co_await packet_io::tryPeekView(shell_, task, kInHdr);
  if (hdr.status == packet_io::ReadStatus::Blocked) co_return;
  const packet_io::Packet res = co_await packet_io::tryPeekView(shell_, task, kInRes);
  if (res.status == packet_io::ReadStatus::Blocked) co_return;
  // Resync realignment (recovery, DESIGN §9): after an upstream fault the
  // two input streams can be out of step — one already carries the Resync
  // marker while the other still holds stale pre-fault packets. Drain the
  // lagging stream one packet per step until both markers pair up, then
  // forward a single marker downstream and reset picture state.
  const auto tag_hdr = packet_io::tagOf(hdr.bytes);
  const auto tag_res = packet_io::tagOf(res.bytes);
  if (tag_hdr == media::PacketTag::Resync || tag_res == media::PacketTag::Resync) {
    if (tag_hdr == tag_res) {
      st.mb_index = 0;
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else if (tag_hdr == media::PacketTag::Resync) {
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else {
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
    }
    co_return;
  }
  if (tag_hdr != tag_res) {
    throw std::runtime_error("McCoproc: header/residual streams out of step");
  }

  switch (tag_hdr) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, st.seq);
      st.have_seq = true;
      st.mb_count = (st.seq.width / media::kMbSize) * (st.seq.height / media::kMbSize);
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Pic: {
      media::PicHeader ph;
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, ph);
      onPicHeader(st, ph);
      pic_events_.push_back(PicEvent{task, ph, sim_.now()});
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Mb: {
      media::MbHeader h;
      media::MbBlocks residual;
      {
        media::ByteReader rh(packet_io::payloadOf(hdr.bytes));
        media::get(rh, h);
        media::ByteReader rr(packet_io::payloadOf(res.bytes));
        media::get(rr, residual);
      }
      media::MbPixels pred, recon;
      co_await predictTimed(st, h, pred);
      media::stages::addResidualMb(pred, residual, recon);
      co_await sim_.delay(static_cast<sim::Cycle>(media::kBlocksPerMacroblock) *
                          params_.cycles_per_block_add);
      if (st.pic.type != media::FrameType::B) {
        co_await writeReconMb(st, st.write_slot, h.mb_x, h.mb_y, recon);
      }
      co_await packet_io::write(shell_, task, kOutPix,
                                media::packPacketInto(writer_, media::PacketTag::Mb, recon),
                                /*wait=*/false);
      ++st.mb_index;
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      finishTask(task);
      break;
    }
    case media::PacketTag::Resync:
      break;  // handled before the switch
  }

  co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
  co_await shell_.putSpace(task, kInRes, res.frame_bytes);
}

sim::Task<void> McCoproc::stepMotionEst(sim::TaskId task, TaskState& st) {
  if (!co_await shell_.getSpace(task, kOutRes, withCtl(kMaxBlocksFrame))) co_return;
  if (!co_await shell_.getSpace(task, kOutHdrVle, withCtl(kMaxHeaderFrame))) co_return;
  if (!co_await shell_.getSpace(task, kOutHdrRec, withCtl(kMaxHeaderFrame))) co_return;

  const packet_io::Packet in = co_await packet_io::tryPeekView(shell_, task, kInCur);
  if (in.status == packet_io::ReadStatus::Blocked) co_return;

  switch (packet_io::tagOf(in.bytes)) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(in.bytes));
      media::get(r, st.seq);
      st.have_seq = true;
      st.mb_count = (st.seq.width / media::kMbSize) * (st.seq.height / media::kMbSize);
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Pic: {
      media::PicHeader ph;
      media::ByteReader r(packet_io::payloadOf(in.bytes));
      media::get(r, ph);
      onPicHeader(st, ph);
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      if (ph.type != media::FrameType::B) {
        // Only reference pictures travel down the reconstruction loop.
        co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      }
      break;
    }
    case media::PacketTag::Mb: {
      media::MbPixels cur;
      media::ByteReader r(packet_io::payloadOf(in.bytes));
      media::get(r, cur);
      const int mb_x = st.mb_index % (st.seq.width / media::kMbSize);
      const int mb_y = st.mb_index / (st.seq.width / media::kMbSize);

      media::MbHeader h;
      h.mb_x = static_cast<std::uint16_t>(mb_x);
      h.mb_y = static_cast<std::uint16_t>(mb_y);
      h.qscale = st.seq.qscale;
      co_await decideMode(st, cur, h);

      media::MbPixels pred;
      co_await predictTimed(st, h, pred);
      media::MbBlocks residual;
      media::stages::residualMb(cur, pred, residual);
      residual.intra = h.mode == media::MbMode::Intra ? 1 : 0;
      co_await sim_.delay(static_cast<sim::Cycle>(media::kBlocksPerMacroblock) *
                          params_.cycles_per_block_add);

      co_await packet_io::write(shell_, task, kOutRes,
                                media::packPacketInto(writer_, media::PacketTag::Mb, residual),
                                /*wait=*/false);
      // The header re-pack reuses the writer only after the residual write
      // completed; the span then stays valid for both header writes.
      const auto hdr_pkt = media::packPacketInto(writer_, media::PacketTag::Mb, h);
      co_await packet_io::write(shell_, task, kOutHdrVle, hdr_pkt, /*wait=*/false);
      if (st.pic.type != media::FrameType::B) {
        co_await packet_io::write(shell_, task, kOutHdrRec, hdr_pkt, /*wait=*/false);
      }
      ++st.mb_index;
      break;
    }
    case media::PacketTag::Resync: {
      // Propagate the marker on every output so the whole encode pipeline
      // realigns; picture state restarts at the next Pic header.
      st.mb_index = 0;
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      finishTask(task);
      break;
    }
  }

  co_await shell_.putSpace(task, kInCur, in.frame_bytes);
}

sim::Task<void> McCoproc::stepEncodeRecon(sim::TaskId task, TaskState& st) {
  if (!co_await shell_.getSpace(task, kOutToken, withCtl(kMaxCtlFrame))) co_return;
  const packet_io::Packet hdr = co_await packet_io::tryPeekView(shell_, task, kInHdr);
  if (hdr.status == packet_io::ReadStatus::Blocked) co_return;
  const packet_io::Packet res = co_await packet_io::tryPeekView(shell_, task, kInRes);
  if (res.status == packet_io::ReadStatus::Blocked) co_return;
  // Same Resync realignment as the decode reconstruction path: drain the
  // lagging input until the markers pair, then consume both silently (the
  // token output carries only Pic / Eos).
  const auto tag_hdr = packet_io::tagOf(hdr.bytes);
  const auto tag_res = packet_io::tagOf(res.bytes);
  if (tag_hdr == media::PacketTag::Resync || tag_res == media::PacketTag::Resync) {
    if (tag_hdr == tag_res) {
      st.mb_index = 0;
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else if (tag_hdr == media::PacketTag::Resync) {
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else {
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
    }
    co_return;
  }
  if (tag_hdr != tag_res) {
    throw std::runtime_error("McCoproc: encode-recon streams out of step");
  }

  switch (tag_hdr) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, st.seq);
      st.have_seq = true;
      st.mb_count = (st.seq.width / media::kMbSize) * (st.seq.height / media::kMbSize);
      break;
    }
    case media::PacketTag::Pic: {
      media::PicHeader ph;
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, ph);
      onPicHeader(st, ph);
      break;
    }
    case media::PacketTag::Mb: {
      media::MbHeader h;
      media::MbBlocks residual;
      {
        media::ByteReader rh(packet_io::payloadOf(hdr.bytes));
        media::get(rh, h);
        media::ByteReader rr(packet_io::payloadOf(res.bytes));
        media::get(rr, residual);
      }
      media::MbPixels pred, recon;
      co_await predictTimed(st, h, pred);
      media::stages::addResidualMb(pred, residual, recon);
      co_await sim_.delay(static_cast<sim::Cycle>(media::kBlocksPerMacroblock) *
                          params_.cycles_per_block_add);
      co_await writeReconMb(st, st.write_slot, h.mb_x, h.mb_y, recon);
      if (++st.mb_index >= st.mb_count) {
        // Frame-done token: unblocks the source for dependent pictures.
        co_await packet_io::write(shell_, task, kOutToken,
                                  media::packPacketInto(writer_, media::PacketTag::Pic, st.pic),
                                  /*wait=*/false);
      }
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOutToken, hdr.bytes, /*wait=*/false);
      finishTask(task);
      break;
    }
    case media::PacketTag::Resync:
      break;  // handled before the switch
  }

  co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
  co_await shell_.putSpace(task, kInRes, res.frame_bytes);
}

}  // namespace eclipse::coproc
