#include "eclipse/coproc/mc.hpp"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"
#include "eclipse/media/motion.hpp"

namespace eclipse::coproc {

namespace {

struct PlaneGeom {
  sim::Addr offset;  // from slot base
  int stride;
  int width;
  int height;
};

PlaneGeom planeGeom(const media::SeqHeader& sh, int plane) {
  const int w = sh.width;
  const int h = sh.height;
  if (plane == 0) return PlaneGeom{0, w, w, h};
  const sim::Addr luma = static_cast<sim::Addr>(w) * h;
  const sim::Addr chroma = static_cast<sim::Addr>(w / 2) * (h / 2);
  if (plane == 1) return PlaneGeom{luma, w / 2, w / 2, h / 2};
  return PlaneGeom{luma + chroma, w / 2, w / 2, h / 2};
}

int clampi(int v, int lo, int hi) { return v < lo ? lo : (v > hi ? hi : v); }

/// Bilinear sample of a fetched full-pel region at integer offset (x, y)
/// with half-pel fraction bits (fx, fy) — bit-exact with
/// motion::sampleHalfPel on the source plane.
std::uint8_t bilinear(const std::vector<std::uint8_t>& region, int rw, int x, int y, int fx,
                      int fy) {
  const int a = region[static_cast<std::size_t>(y * rw + x)];
  if (fx == 0 && fy == 0) return static_cast<std::uint8_t>(a);
  if (fx != 0 && fy == 0) {
    const int b = region[static_cast<std::size_t>(y * rw + x + 1)];
    return static_cast<std::uint8_t>((a + b + 1) / 2);
  }
  if (fx == 0) {
    const int b = region[static_cast<std::size_t>((y + 1) * rw + x)];
    return static_cast<std::uint8_t>((a + b + 1) / 2);
  }
  const int b = region[static_cast<std::size_t>(y * rw + x + 1)];
  const int c = region[static_cast<std::size_t>((y + 1) * rw + x)];
  const int d = region[static_cast<std::size_t>((y + 1) * rw + x + 1)];
  return static_cast<std::uint8_t>((a + b + c + d + 2) / 4);
}

}  // namespace

void McCoproc::configureTask(sim::TaskId task, const McTaskConfig& cfg) {
  TaskState st;
  st.cfg = cfg;
  states_[task] = std::move(st);
}

sim::Addr McCoproc::slotBase(const TaskState& st, std::int32_t slot) const {
  if (slot < 0) throw std::logic_error("McCoproc: prediction from a missing reference slot");
  return st.cfg.frame_store_base +
         static_cast<sim::Addr>(slot) * frameSlotBytes(st.seq);
}

sim::Task<void> McCoproc::fetchRegion(TaskState& st, std::int32_t slot, int plane, int x0, int y0,
                                      int w, int h, std::vector<std::uint8_t>& out) {
  const PlaneGeom g = planeGeom(st.seq, plane);
  const sim::Addr base = slotBase(st, slot) + g.offset;
  out.resize(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));

  // Timing: one 2D burst over the system bus of the region size.
  co_await dram_.touchRead(out.size(), static_cast<int>(shell_.id()));

  // Function: clamped per-sample gather (replicated frame edges, exactly
  // like motion::sampleHalfPel's full-pel clamping).
  const auto view = dram_.storage().view();
  for (int y = 0; y < h; ++y) {
    const int sy = clampi(y0 + y, 0, g.height - 1);
    for (int x = 0; x < w; ++x) {
      const int sx = clampi(x0 + x, 0, g.width - 1);
      out[static_cast<std::size_t>(y * w + x)] =
          view[static_cast<std::size_t>(base + static_cast<sim::Addr>(sy) * static_cast<sim::Addr>(g.stride) +
                                        static_cast<sim::Addr>(sx))];
    }
  }
}

sim::Task<void> McCoproc::writeReconMb(TaskState& st, std::int32_t slot, int mb_x, int mb_y,
                                       const media::MbPixels& px) {
  const sim::Addr base = slotBase(st, slot);
  const PlaneGeom gy = planeGeom(st.seq, 0);
  const PlaneGeom gcb = planeGeom(st.seq, 1);
  const PlaneGeom gcr = planeGeom(st.seq, 2);
  auto storage = dram_.storage().view();

  // Function: scatter the rows into the frame slot.
  for (int y = 0; y < media::kMbSize; ++y) {
    const sim::Addr row = base + gy.offset +
                          static_cast<sim::Addr>(mb_y * media::kMbSize + y) * static_cast<sim::Addr>(gy.stride) +
                          static_cast<sim::Addr>(mb_x * media::kMbSize);
    std::copy_n(px.y.begin() + y * media::kMbSize, media::kMbSize,
                storage.begin() + static_cast<std::ptrdiff_t>(row));
  }
  for (int y = 0; y < 8; ++y) {
    const sim::Addr row_cb = base + gcb.offset +
                             static_cast<sim::Addr>(mb_y * 8 + y) * static_cast<sim::Addr>(gcb.stride) +
                             static_cast<sim::Addr>(mb_x * 8);
    const sim::Addr row_cr = base + gcr.offset +
                             static_cast<sim::Addr>(mb_y * 8 + y) * static_cast<sim::Addr>(gcr.stride) +
                             static_cast<sim::Addr>(mb_x * 8);
    std::copy_n(px.cb.begin() + y * 8, 8, storage.begin() + static_cast<std::ptrdiff_t>(row_cb));
    std::copy_n(px.cr.begin() + y * 8, 8, storage.begin() + static_cast<std::ptrdiff_t>(row_cr));
  }

  // Timing: three posted write bursts (Y, Cb, Cr). Writes go through a
  // write buffer, so the coprocessor stalls only for bus occupancy, not
  // for the off-chip access latency (reads cannot be posted).
  co_await dram_.bus().transfer(256, static_cast<int>(shell_.id()));
  co_await dram_.bus().transfer(64, static_cast<int>(shell_.id()));
  co_await dram_.bus().transfer(64, static_cast<int>(shell_.id()));
}

sim::Task<void> McCoproc::predictTimed(TaskState& st, const media::MbHeader& h,
                                       media::MbPixels& pred) {
  if (h.mode == media::MbMode::Intra) {
    pred.y.fill(128);
    pred.cb.fill(128);
    pred.cr.fill(128);
    co_return;
  }

  const int px = h.mb_x * media::kMbSize;
  const int py = h.mb_y * media::kMbSize;

  auto fetchOne = [&](std::int32_t slot, media::MotionVector mv,
                      media::MbPixels& out) -> sim::Task<void> {
    ++predictions_;
    // Luma 17x17 region at the floor of the half-pel coordinate.
    const int cx = 2 * px + mv.x;
    const int cy = 2 * py + mv.y;
    const int x0 = cx >> 1, fx = cx & 1;
    const int y0 = cy >> 1, fy = cy & 1;
    co_await fetchRegion(st, slot, 0, x0, y0, 17, 17, region_);
    for (int y = 0; y < media::kMbSize; ++y) {
      for (int x = 0; x < media::kMbSize; ++x) {
        out.y[static_cast<std::size_t>(y * media::kMbSize + x)] = bilinear(region_, 17, x, y, fx, fy);
      }
    }
    // Chroma: the luma vector halved (truncation toward zero, MPEG-2).
    const int cvx = mv.x / 2;
    const int cvy = mv.y / 2;
    const int pcx = px / 2, pcy = py / 2;
    const int ccx = 2 * pcx + cvx, ccy = 2 * pcy + cvy;
    const int cx0 = ccx >> 1, cfx = ccx & 1;
    const int cy0 = ccy >> 1, cfy = ccy & 1;
    co_await fetchRegion(st, slot, 1, cx0, cy0, 9, 9, rcb_);
    co_await fetchRegion(st, slot, 2, cx0, cy0, 9, 9, rcr_);
    for (int y = 0; y < 8; ++y) {
      for (int x = 0; x < 8; ++x) {
        out.cb[static_cast<std::size_t>(y * 8 + x)] = bilinear(rcb_, 9, x, y, cfx, cfy);
        out.cr[static_cast<std::size_t>(y * 8 + x)] = bilinear(rcr_, 9, x, y, cfx, cfy);
      }
    }
  };

  // Reference slot selection mirrors the decoder: P pictures predict from
  // the most recent reference; B pictures use (prev, last) as (fwd, bwd).
  const std::int32_t fwd_slot =
      st.pic.type == media::FrameType::B ? st.refs.prev : st.refs.last;
  const std::int32_t bwd_slot = st.refs.last;

  switch (h.mode) {
    case media::MbMode::Forward:
      co_await fetchOne(fwd_slot, h.mv_fwd, pred);
      break;
    case media::MbMode::Backward:
      co_await fetchOne(bwd_slot, h.mv_bwd, pred);
      break;
    case media::MbMode::Bidirectional: {
      media::MbPixels a, b;
      co_await fetchOne(fwd_slot, h.mv_fwd, a);
      co_await fetchOne(bwd_slot, h.mv_bwd, b);
      media::motion::average(a.y, b.y, pred.y);
      media::motion::average(a.cb, b.cb, pred.cb);
      media::motion::average(a.cr, b.cr, pred.cr);
      break;
    }
    case media::MbMode::Intra:
      break;  // handled above
  }
}

sim::Task<void> McCoproc::decideMode(TaskState& st, const media::MbPixels& cur,
                                     media::MbHeader& h) {
  if (st.pic.type == media::FrameType::I) {
    h.mode = media::MbMode::Intra;
    co_return;
  }
  ++searches_;

  const int R = params_.search_range;
  const int S = 2 * R + 19;  // window edge: covers full search + half-pel refine
  const int px = h.mb_x * media::kMbSize;
  const int py = h.mb_y * media::kMbSize;
  const int wx0 = px - (R + 1);
  const int wy0 = py - (R + 1);

  // SAD of a half-pel candidate against a fetched window.
  auto sadHalf = [&](const std::vector<std::uint8_t>& win, int mvx, int mvy) {
    std::uint32_t sad = 0;
    for (int y = 0; y < media::kMbSize; ++y) {
      const int hy = 2 * y + mvy + 2 * (R + 1);
      for (int x = 0; x < media::kMbSize; ++x) {
        const int hx = 2 * x + mvx + 2 * (R + 1);
        const int p = bilinear(win, S, hx >> 1, hy >> 1, hx & 1, hy & 1);
        sad += static_cast<std::uint32_t>(
            std::abs(static_cast<int>(cur.y[static_cast<std::size_t>(y * media::kMbSize + x)]) - p));
      }
    }
    return sad;
  };

  // Full-pel exhaustive search plus half-pel refinement in one window.
  struct Best {
    media::MotionVector mv;
    std::uint32_t sad = std::numeric_limits<std::uint32_t>::max();
  };
  int candidates = 0;
  auto searchWindow = [&](const std::vector<std::uint8_t>& win) {
    // The zero vector is evaluated first so that it wins SAD ties — the
    // same preference order as motion::search (keeps the window search
    // bit-identical with the functional encoder's full search).
    Best best{media::MotionVector{0, 0}, sadHalf(win, 0, 0)};
    ++candidates;
    for (int dy = -R; dy <= R; ++dy) {
      for (int dx = -R; dx <= R; ++dx) {
        if (dx == 0 && dy == 0) continue;
        const std::uint32_t sad = sadHalf(win, 2 * dx, 2 * dy);
        ++candidates;
        if (sad < best.sad) {
          best = Best{media::MotionVector{static_cast<std::int16_t>(2 * dx),
                                          static_cast<std::int16_t>(2 * dy)},
                      sad};
        }
      }
    }
    if (params_.half_pel) {
      Best refined = best;
      for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
          if (dx == 0 && dy == 0) continue;
          const int mvx = best.mv.x + dx;
          const int mvy = best.mv.y + dy;
          const std::uint32_t sad = sadHalf(win, mvx, mvy);
          ++candidates;
          if (sad < refined.sad) {
            refined = Best{media::MotionVector{static_cast<std::int16_t>(mvx),
                                               static_cast<std::int16_t>(mvy)},
                           sad};
          }
        }
      }
      best = refined;
    }
    return best;
  };

  const std::int32_t fwd_slot =
      st.pic.type == media::FrameType::B ? st.refs.prev : st.refs.last;
  co_await fetchRegion(st, fwd_slot, 0, wx0, wy0, S, S, win_f_);
  const Best best_f = searchWindow(win_f_);

  Best best_b;
  std::uint32_t sad_bidi = std::numeric_limits<std::uint32_t>::max();
  if (st.pic.type == media::FrameType::B) {
    co_await fetchRegion(st, st.refs.last, 0, wx0, wy0, S, S, win_b_);
    best_b = searchWindow(win_b_);
    // Bidirectional: average of the two best predictions.
    std::uint32_t sad = 0;
    for (int y = 0; y < media::kMbSize; ++y) {
      const int hfy = 2 * y + best_f.mv.y + 2 * (R + 1);
      const int hby = 2 * y + best_b.mv.y + 2 * (R + 1);
      for (int x = 0; x < media::kMbSize; ++x) {
        const int hfx = 2 * x + best_f.mv.x + 2 * (R + 1);
        const int hbx = 2 * x + best_b.mv.x + 2 * (R + 1);
        const int pf = bilinear(win_f_, S, hfx >> 1, hfy >> 1, hfx & 1, hfy & 1);
        const int pb = bilinear(win_b_, S, hbx >> 1, hby >> 1, hbx & 1, hby & 1);
        const int p = (pf + pb + 1) / 2;
        sad += static_cast<std::uint32_t>(
            std::abs(static_cast<int>(cur.y[static_cast<std::size_t>(y * media::kMbSize + x)]) - p));
      }
    }
    sad_bidi = sad;
    ++candidates;
  }

  co_await sim_.delay(static_cast<sim::Cycle>(candidates) * params_.cycles_per_candidate);

  // Intra activity of the current macroblock (mean absolute deviation).
  std::uint32_t sum = 0;
  for (const auto v : cur.y) sum += v;
  const std::uint32_t mean = sum / 256;
  std::uint32_t activity = 0;
  for (const auto v : cur.y) {
    activity += static_cast<std::uint32_t>(std::abs(static_cast<int>(v) - static_cast<int>(mean)));
  }

  std::uint32_t best_sad = best_f.sad;
  media::MbMode mode = media::MbMode::Forward;
  if (st.pic.type == media::FrameType::B) {
    if (best_b.sad < best_sad) {
      best_sad = best_b.sad;
      mode = media::MbMode::Backward;
    }
    if (sad_bidi < best_sad) {
      best_sad = sad_bidi;
      mode = media::MbMode::Bidirectional;
    }
  }
  if (best_sad > activity) {
    h.mode = media::MbMode::Intra;
    co_return;
  }
  h.mode = mode;
  if (mode == media::MbMode::Forward || mode == media::MbMode::Bidirectional) h.mv_fwd = best_f.mv;
  if (mode == media::MbMode::Backward || mode == media::MbMode::Bidirectional) h.mv_bwd = best_b.mv;
}

void McCoproc::onPicHeader(TaskState& st, const media::PicHeader& ph) {
  if (st.prev_pic_was_ref) st.refs.rotate(st.write_slot);
  st.pic = ph;
  const bool is_ref = ph.type != media::FrameType::B;
  if (is_ref) st.write_slot = st.refs.pickFree(st.cfg.frame_store_slots);
  st.prev_pic_was_ref = is_ref;
  st.mb_index = 0;
}

sim::Task<void> McCoproc::step(sim::TaskId task, std::uint32_t /*task_info*/) {
  auto it = states_.find(task);
  if (it == states_.end()) throw std::logic_error("McCoproc: unconfigured task scheduled");
  TaskState& st = it->second;
  switch (st.cfg.kind) {
    case McTaskKind::DecodeRecon: co_await stepDecodeRecon(task, st); break;
    case McTaskKind::MotionEst: co_await stepMotionEst(task, st); break;
    case McTaskKind::EncodeRecon: co_await stepEncodeRecon(task, st); break;
  }
}

sim::Task<void> McCoproc::stepDecodeRecon(sim::TaskId task, TaskState& st) {
  if (!co_await shell_.getSpace(task, kOutPix, withCtl(kMaxPixelsFrame))) co_return;
  // Peeked views stay valid until the PutSpace at the end of the step, so
  // pass-through writes can stream straight out of the input FIFO.
  const packet_io::Packet hdr = co_await packet_io::tryPeekView(shell_, task, kInHdr);
  if (hdr.status == packet_io::ReadStatus::Blocked) co_return;
  const packet_io::Packet res = co_await packet_io::tryPeekView(shell_, task, kInRes);
  if (res.status == packet_io::ReadStatus::Blocked) co_return;
  // Resync realignment (recovery, DESIGN §9): after an upstream fault the
  // two input streams can be out of step — one already carries the Resync
  // marker while the other still holds stale pre-fault packets. Drain the
  // lagging stream one packet per step until both markers pair up, then
  // forward a single marker downstream and reset picture state.
  const auto tag_hdr = packet_io::tagOf(hdr.bytes);
  const auto tag_res = packet_io::tagOf(res.bytes);
  if (tag_hdr == media::PacketTag::Resync || tag_res == media::PacketTag::Resync) {
    if (tag_hdr == tag_res) {
      st.mb_index = 0;
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else if (tag_hdr == media::PacketTag::Resync) {
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else {
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
    }
    co_return;
  }
  if (tag_hdr != tag_res) {
    throw std::runtime_error("McCoproc: header/residual streams out of step");
  }

  switch (tag_hdr) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, st.seq);
      st.have_seq = true;
      st.mb_count = (st.seq.width / media::kMbSize) * (st.seq.height / media::kMbSize);
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Pic: {
      media::PicHeader ph;
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, ph);
      onPicHeader(st, ph);
      pic_events_.push_back(PicEvent{task, ph, sim_.now()});
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Mb: {
      media::MbHeader h;
      media::MbBlocks residual;
      {
        media::ByteReader rh(packet_io::payloadOf(hdr.bytes));
        media::get(rh, h);
        media::ByteReader rr(packet_io::payloadOf(res.bytes));
        media::get(rr, residual);
      }
      media::MbPixels pred, recon;
      co_await predictTimed(st, h, pred);
      media::stages::addResidualMb(pred, residual, recon);
      co_await sim_.delay(static_cast<sim::Cycle>(media::kBlocksPerMacroblock) *
                          params_.cycles_per_block_add);
      if (st.pic.type != media::FrameType::B) {
        co_await writeReconMb(st, st.write_slot, h.mb_x, h.mb_y, recon);
      }
      co_await packet_io::write(shell_, task, kOutPix,
                                media::packPacketInto(writer_, media::PacketTag::Mb, recon),
                                /*wait=*/false);
      ++st.mb_index;
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOutPix, hdr.bytes, /*wait=*/false);
      finishTask(task);
      break;
    }
    case media::PacketTag::Resync:
      break;  // handled before the switch
  }

  co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
  co_await shell_.putSpace(task, kInRes, res.frame_bytes);
}

sim::Task<void> McCoproc::stepMotionEst(sim::TaskId task, TaskState& st) {
  if (!co_await shell_.getSpace(task, kOutRes, withCtl(kMaxBlocksFrame))) co_return;
  if (!co_await shell_.getSpace(task, kOutHdrVle, withCtl(kMaxHeaderFrame))) co_return;
  if (!co_await shell_.getSpace(task, kOutHdrRec, withCtl(kMaxHeaderFrame))) co_return;

  const packet_io::Packet in = co_await packet_io::tryPeekView(shell_, task, kInCur);
  if (in.status == packet_io::ReadStatus::Blocked) co_return;

  switch (packet_io::tagOf(in.bytes)) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(in.bytes));
      media::get(r, st.seq);
      st.have_seq = true;
      st.mb_count = (st.seq.width / media::kMbSize) * (st.seq.height / media::kMbSize);
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Pic: {
      media::PicHeader ph;
      media::ByteReader r(packet_io::payloadOf(in.bytes));
      media::get(r, ph);
      onPicHeader(st, ph);
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      if (ph.type != media::FrameType::B) {
        // Only reference pictures travel down the reconstruction loop.
        co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      }
      break;
    }
    case media::PacketTag::Mb: {
      media::MbPixels cur;
      media::ByteReader r(packet_io::payloadOf(in.bytes));
      media::get(r, cur);
      const int mb_x = st.mb_index % (st.seq.width / media::kMbSize);
      const int mb_y = st.mb_index / (st.seq.width / media::kMbSize);

      media::MbHeader h;
      h.mb_x = static_cast<std::uint16_t>(mb_x);
      h.mb_y = static_cast<std::uint16_t>(mb_y);
      h.qscale = st.seq.qscale;
      co_await decideMode(st, cur, h);

      media::MbPixels pred;
      co_await predictTimed(st, h, pred);
      media::MbBlocks residual;
      media::stages::residualMb(cur, pred, residual);
      residual.intra = h.mode == media::MbMode::Intra ? 1 : 0;
      co_await sim_.delay(static_cast<sim::Cycle>(media::kBlocksPerMacroblock) *
                          params_.cycles_per_block_add);

      co_await packet_io::write(shell_, task, kOutRes,
                                media::packPacketInto(writer_, media::PacketTag::Mb, residual),
                                /*wait=*/false);
      // The header re-pack reuses the writer only after the residual write
      // completed; the span then stays valid for both header writes.
      const auto hdr_pkt = media::packPacketInto(writer_, media::PacketTag::Mb, h);
      co_await packet_io::write(shell_, task, kOutHdrVle, hdr_pkt, /*wait=*/false);
      if (st.pic.type != media::FrameType::B) {
        co_await packet_io::write(shell_, task, kOutHdrRec, hdr_pkt, /*wait=*/false);
      }
      ++st.mb_index;
      break;
    }
    case media::PacketTag::Resync: {
      // Propagate the marker on every output so the whole encode pipeline
      // realigns; picture state restarts at the next Pic header.
      st.mb_index = 0;
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOutRes, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrVle, in.bytes, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdrRec, in.bytes, /*wait=*/false);
      finishTask(task);
      break;
    }
  }

  co_await shell_.putSpace(task, kInCur, in.frame_bytes);
}

sim::Task<void> McCoproc::stepEncodeRecon(sim::TaskId task, TaskState& st) {
  if (!co_await shell_.getSpace(task, kOutToken, withCtl(kMaxCtlFrame))) co_return;
  const packet_io::Packet hdr = co_await packet_io::tryPeekView(shell_, task, kInHdr);
  if (hdr.status == packet_io::ReadStatus::Blocked) co_return;
  const packet_io::Packet res = co_await packet_io::tryPeekView(shell_, task, kInRes);
  if (res.status == packet_io::ReadStatus::Blocked) co_return;
  // Same Resync realignment as the decode reconstruction path: drain the
  // lagging input until the markers pair, then consume both silently (the
  // token output carries only Pic / Eos).
  const auto tag_hdr = packet_io::tagOf(hdr.bytes);
  const auto tag_res = packet_io::tagOf(res.bytes);
  if (tag_hdr == media::PacketTag::Resync || tag_res == media::PacketTag::Resync) {
    if (tag_hdr == tag_res) {
      st.mb_index = 0;
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else if (tag_hdr == media::PacketTag::Resync) {
      co_await shell_.putSpace(task, kInRes, res.frame_bytes);
    } else {
      co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
    }
    co_return;
  }
  if (tag_hdr != tag_res) {
    throw std::runtime_error("McCoproc: encode-recon streams out of step");
  }

  switch (tag_hdr) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, st.seq);
      st.have_seq = true;
      st.mb_count = (st.seq.width / media::kMbSize) * (st.seq.height / media::kMbSize);
      break;
    }
    case media::PacketTag::Pic: {
      media::PicHeader ph;
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, ph);
      onPicHeader(st, ph);
      break;
    }
    case media::PacketTag::Mb: {
      media::MbHeader h;
      media::MbBlocks residual;
      {
        media::ByteReader rh(packet_io::payloadOf(hdr.bytes));
        media::get(rh, h);
        media::ByteReader rr(packet_io::payloadOf(res.bytes));
        media::get(rr, residual);
      }
      media::MbPixels pred, recon;
      co_await predictTimed(st, h, pred);
      media::stages::addResidualMb(pred, residual, recon);
      co_await sim_.delay(static_cast<sim::Cycle>(media::kBlocksPerMacroblock) *
                          params_.cycles_per_block_add);
      co_await writeReconMb(st, st.write_slot, h.mb_x, h.mb_y, recon);
      if (++st.mb_index >= st.mb_count) {
        // Frame-done token: unblocks the source for dependent pictures.
        co_await packet_io::write(shell_, task, kOutToken,
                                  media::packPacketInto(writer_, media::PacketTag::Pic, st.pic),
                                  /*wait=*/false);
      }
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOutToken, hdr.bytes, /*wait=*/false);
      finishTask(task);
      break;
    }
    case media::PacketTag::Resync:
      break;  // handled before the switch
  }

  co_await shell_.putSpace(task, kInHdr, hdr.frame_bytes);
  co_await shell_.putSpace(task, kInRes, res.frame_bytes);
}

}  // namespace eclipse::coproc
