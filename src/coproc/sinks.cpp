#include "eclipse/coproc/sinks.hpp"

#include <stdexcept>
#include <string>

#include "eclipse/coproc/packet_io.hpp"

namespace eclipse::coproc {

std::vector<media::Frame> FrameSink::framesInDisplayOrder() const {
  std::vector<media::Frame> out;
  out.reserve(frames_.size());
  for (const auto& [idx, f] : frames_) out.push_back(f);
  return out;
}

void FrameSink::rearm(std::function<void()> on_done) {
  if (!done_) {
    throw std::logic_error("FrameSink::rearm: sink has not finished the current segment");
  }
  std::vector<media::Frame> seg;
  seg.reserve(frames_.size());
  for (auto& [idx, f] : frames_) seg.push_back(std::move(f));
  segments_.push_back(std::move(seg));
  frames_.clear();
  seq_ = media::SeqHeader{};
  pic_ = media::PicHeader{};
  mb_index_ = 0;
  pic_open_ = false;
  done_ = false;
  on_done_ = std::move(on_done);
}

const std::vector<media::Frame>& FrameSink::segmentFrames(std::size_t i) const {
  if (i >= segments_.size()) {
    throw std::out_of_range("FrameSink::segmentFrames: only " +
                            std::to_string(segments_.size()) + " segment(s) archived");
  }
  return segments_[i];
}

sim::Task<void> FrameSink::step(sim::TaskId task, std::uint32_t /*task_info*/) {
  // Zero-copy consumption: the packet view is parsed in place before the
  // step's next suspension point, so no owning copy is needed.
  const packet_io::Packet p = co_await packet_io::tryReadView(shell_, task, kIn);
  if (p.status == packet_io::ReadStatus::Blocked) co_return;
  const auto pkt = p.bytes;
  switch (packet_io::tagOf(pkt)) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(pkt));
      media::get(r, seq_);
      break;
    }
    case media::PacketTag::Pic: {
      media::ByteReader r(packet_io::payloadOf(pkt));
      media::get(r, pic_);
      frames_.emplace(pic_.temporal_ref, media::Frame(seq_.width, seq_.height));
      mb_index_ = 0;
      pic_open_ = true;
      break;
    }
    case media::PacketTag::Mb: {
      media::MbPixels px;
      media::ByteReader r(packet_io::payloadOf(pkt));
      media::get(r, px);
      const int mb_w = seq_.width / media::kMbSize;
      auto it = frames_.find(pic_.temporal_ref);
      if (it == frames_.end()) throw std::runtime_error("FrameSink: MB before picture header");
      media::stages::placeMb(it->second, mb_index_ % mb_w, mb_index_ / mb_w, px);
      ++mb_index_;
      ++mbs_;
      const int mb_count = (seq_.width / media::kMbSize) * (seq_.height / media::kMbSize);
      if (mb_index_ >= mb_count) pic_open_ = false;  // frame fully assembled
      break;
    }
    case media::PacketTag::Resync: {
      // Recovery: everything before the marker belongs to the abandoned
      // picture. Drop the half-assembled frame (never display a frame with
      // stale/corrupt regions) and count it.
      if (pic_open_) {
        frames_.erase(pic_.temporal_ref);
        ++frames_dropped_;
        pic_open_ = false;
      }
      mb_index_ = 0;
      break;
    }
    case media::PacketTag::Eos: {
      done_ = true;
      finishTask(task);
      if (on_done_) on_done_();
      break;
    }
  }
}

sim::Task<void> ByteSink::step(sim::TaskId task, std::uint32_t /*task_info*/) {
  const packet_io::Packet p = co_await packet_io::tryReadView(shell_, task, kIn);
  if (p.status == packet_io::ReadStatus::Blocked) co_return;
  const auto pkt = p.bytes;
  switch (packet_io::tagOf(pkt)) {
    case media::PacketTag::Mb: {
      const auto payload = packet_io::payloadOf(pkt);
      bytes_.insert(bytes_.end(), payload.begin(), payload.end());
      break;
    }
    case media::PacketTag::Resync:
      break;  // marker only delimits; the byte stream itself is unframed
    case media::PacketTag::Eos: {
      done_ = true;
      finishTask(task);
      if (on_done_) on_done_();
      break;
    }
    default:
      throw std::runtime_error("ByteSink: unexpected packet tag");
  }
}

}  // namespace eclipse::coproc
