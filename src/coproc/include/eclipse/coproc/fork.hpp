#pragma once

#include <cstdint>
#include <vector>

#include "eclipse/coproc/coprocessor.hpp"

namespace eclipse::coproc {

/// Stream duplicator ("tee") coprocessor.
///
/// The paper's streams connect "the output port of a producing task and
/// the input port of one or more consuming tasks"; the stream-table
/// mechanism of Section 5.1 is point-to-point, so multicast is realised by
/// a forwarding element that copies one input stream to N output streams —
/// each with its own FIFO, synchronization and back-pressure. A fork task
/// makes this an ordinary multi-tasking coprocessor.
///
/// Ports per task: 0 = in, 1..fanout = out. Packets (length-framed) are
/// copied verbatim; Eos retires the task.
class ForkCoproc final : public Coprocessor {
 public:
  static constexpr sim::PortId kIn = 0;

  /// `max_frame_bytes` bounds the packets this fork will carry (used to
  /// reserve output space before consuming input).
  ForkCoproc(sim::Simulator& sim, shell::Shell& sh, int fanout, std::uint32_t max_frame_bytes)
      : Coprocessor(sim, sh, "fork"), fanout_(fanout), max_frame_(max_frame_bytes) {}

  [[nodiscard]] int fanout() const { return fanout_; }
  [[nodiscard]] std::uint64_t packetsForwarded() const { return packets_; }

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override;

 private:
  int fanout_;
  std::uint32_t max_frame_;
  std::uint64_t packets_ = 0;
  std::vector<std::uint8_t> pkt_;  // staged packet (view dies at first co_await)
};

}  // namespace eclipse::coproc
