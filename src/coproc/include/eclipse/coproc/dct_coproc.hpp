#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "eclipse/coproc/coprocessor.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/media/packets.hpp"

namespace eclipse::coproc {

/// DCT coprocessor timing parameters. The paper pipelined this coprocessor
/// as a result of the Figure-10 analysis; `pipelined` models that upgrade.
struct DctParams {
  // Calibrated (EXPERIMENTS.md, E4); the pipelined variant models the
  // Section-7 DCT upgrade.
  sim::Cycle cycles_per_block = 90;
  sim::Cycle cycles_per_block_pipelined = 24;
  bool pipelined = false;

  [[nodiscard]] sim::Cycle blockCycles() const {
    return pipelined ? cycles_per_block_pipelined : cycles_per_block;
  }
};

/// Direction selector in the task_info word: the coprocessor time-shares
/// forward DCT tasks (encoders) and inverse DCT tasks (decoders).
inline constexpr std::uint32_t kDctInfoForward = 1u << 0;

/// (I)DCT coprocessor. Ports per task: 0 = MbBlocks in, 1 = MbBlocks out.
class DctCoproc final : public Coprocessor {
 public:
  static constexpr sim::PortId kIn = 0;
  static constexpr sim::PortId kOut = 1;

  DctCoproc(sim::Simulator& sim, shell::Shell& sh, const DctParams& params)
      : Coprocessor(sim, sh, "dct"), params_(params) {}

  [[nodiscard]] std::uint64_t blocksTransformed() const { return blocks_; }
  [[nodiscard]] const DctParams& dctParams() const { return params_; }

  /// Recovery (DESIGN §9): drop incoming Mb packets until the next Resync
  /// marker (control packets still pass through unchanged).
  void requestDiscard(sim::TaskId task) { discard_[task] = true; }
  [[nodiscard]] std::uint64_t packetsDiscarded() const { return discarded_; }

  void reset() override { discard_.clear(); }

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override;

 private:
  DctParams params_;
  std::map<sim::TaskId, bool> discard_;  ///< per-task discard-until-Resync
  std::uint64_t discarded_ = 0;
  std::uint64_t blocks_ = 0;
  media::ByteWriter writer_;        // reusable Mb serialisation buffer
  std::vector<std::uint8_t> ctl_;  // staged control-packet passthrough
};

}  // namespace eclipse::coproc
