#pragma once

#include <cstdint>
#include <map>

#include "eclipse/coproc/coprocessor.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::coproc {

/// RLSQ coprocessor timing parameters.
struct RlsqParams {
  // Calibrated so the coprocessor throughput ratios reproduce the paper's
  // per-frame-type bottleneck behaviour (see EXPERIMENTS.md, E4).
  sim::Cycle cycles_per_pair = 14;  ///< per run/level symbol processed
  sim::Cycle cycles_per_block = 4;  ///< fixed scan + quant pipeline cost per coded block
};

/// Direction selector carried in the task_info word (the task-table
/// parameter returned by GetTask): the same hardware performs run-length
/// decoding + inverse scan + inverse quantisation for decoders, and
/// quantisation + scan + run-length encoding for encoders (Section 6).
inline constexpr std::uint32_t kRlsqInfoEncode = 1u << 0;

/// Run-length / scan / quantisation coprocessor.
///
/// Decode tasks: port 0 = MbCoefs in, port 1 = MbBlocks out.
/// Encode tasks: port 0 = MbBlocks (DCT coefficients) in,
///               port 1 = MbCoefs out (to VLE),
///               port 2 = MbCoefs out (to the reconstruction loop).
class RlsqCoproc final : public Coprocessor {
 public:
  static constexpr sim::PortId kIn = 0;
  static constexpr sim::PortId kOut = 1;
  static constexpr sim::PortId kOutRecon = 2;

  RlsqCoproc(sim::Simulator& sim, shell::Shell& sh, const RlsqParams& params)
      : Coprocessor(sim, sh, "rlsq"), params_(params) {}

  [[nodiscard]] std::uint64_t pairsProcessed() const { return pairs_; }
  [[nodiscard]] std::uint64_t blocksProcessed() const { return blocks_; }

  /// Recovery (DESIGN §9): drop incoming packets until a Resync marker (or
  /// Eos) arrives. Issued by the CPU before re-enabling a faulted task so
  /// stale in-flight data from before the fault never reaches downstream.
  void requestDiscard(sim::TaskId task) { states_[task].discard = true; }

  /// Packets dropped while in discard mode (all tasks).
  [[nodiscard]] std::uint64_t packetsDiscarded() const { return discarded_; }

  void reset() override { states_.clear(); }

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override;

 private:
  struct TaskState {
    media::SeqHeader seq{};
    media::PicHeader pic{};
    bool have_seq = false;
    bool pic_is_ref = false;
    bool discard = false;  ///< dropping packets until the next Resync/Eos
  };

  sim::Task<void> stepDecode(sim::TaskId task, TaskState& st);
  sim::Task<void> stepEncode(sim::TaskId task, TaskState& st);

  RlsqParams params_;
  std::map<sim::TaskId, TaskState> states_;
  media::ByteWriter writer_;  // reusable serialisation buffer (steps are serial)
  std::uint64_t pairs_ = 0;
  std::uint64_t blocks_ = 0;
  std::uint64_t discarded_ = 0;
};

}  // namespace eclipse::coproc
