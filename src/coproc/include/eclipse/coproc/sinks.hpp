#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "eclipse/coproc/coprocessor.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::coproc {

/// Output-side coprocessor that assembles the MC pixel stream back into
/// display frames (stands in for the display/memory writer of a real SoC).
/// Fires `on_done` when the end-of-stream packet arrives.
class FrameSink final : public Coprocessor {
 public:
  static constexpr sim::PortId kIn = 0;

  FrameSink(sim::Simulator& sim, shell::Shell& sh, std::function<void()> on_done)
      : Coprocessor(sim, sh, "frame-sink"), on_done_(std::move(on_done)) {}

  /// Decoded frames in display order (valid after completion).
  [[nodiscard]] std::vector<media::Frame> framesInDisplayOrder() const;

  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] const media::SeqHeader& seqHeader() const { return seq_; }
  [[nodiscard]] std::uint64_t macroblocksReceived() const { return mbs_; }

  /// Frames abandoned mid-assembly when a Resync marker arrived (recovery
  /// accounting: a clip that lost pictures still reports how many).
  [[nodiscard]] std::uint64_t framesDropped() const { return frames_dropped_; }

  /// Re-arms a completed sink for another bitstream segment (multi-segment
  /// playback across mode switches): archives the finished frames, clears
  /// the assembly state and the done latch, and installs the next segment's
  /// completion callback. Throws std::logic_error unless done().
  void rearm(std::function<void()> on_done);

  /// Segments archived by rearm() so far (the live segment is not counted).
  [[nodiscard]] std::size_t segmentsCompleted() const { return segments_.size(); }
  /// Display-order frames of archived segment `i`; throws std::out_of_range.
  [[nodiscard]] const std::vector<media::Frame>& segmentFrames(std::size_t i) const;

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override;

 private:
  std::function<void()> on_done_;
  media::SeqHeader seq_{};
  media::PicHeader pic_{};
  std::map<int, media::Frame> frames_;  // by temporal_ref
  std::vector<std::vector<media::Frame>> segments_;  // archived by rearm()
  int mb_index_ = 0;
  bool pic_open_ = false;  ///< a picture header arrived, MBs still expected
  std::uint64_t mbs_ = 0;
  std::uint64_t frames_dropped_ = 0;
  bool done_ = false;
};

/// Collects a raw byte stream (e.g. the variable-length encoder's output
/// bitstream) delivered as Mb-tagged chunk packets. Fires `on_done` on Eos.
class ByteSink final : public Coprocessor {
 public:
  static constexpr sim::PortId kIn = 0;

  ByteSink(sim::Simulator& sim, shell::Shell& sh, std::function<void()> on_done)
      : Coprocessor(sim, sh, "byte-sink"), on_done_(std::move(on_done)) {}

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return bytes_; }
  [[nodiscard]] bool done() const { return done_; }

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override;

 private:
  std::function<void()> on_done_;
  std::vector<std::uint8_t> bytes_;
  bool done_ = false;
};

}  // namespace eclipse::coproc
