#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "eclipse/coproc/coprocessor.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/mem/sram.hpp"

namespace eclipse::coproc {

/// MC/ME coprocessor timing parameters.
struct McParams {
  sim::Cycle cycles_per_block_add = 8;    ///< residual add per 8x8 block
  sim::Cycle cycles_per_candidate = 16;   ///< SAD evaluation per ME candidate
  int search_range = 4;                   ///< full-pel ME range (encode tasks)
  bool half_pel = true;                   ///< half-pel ME refinement
};

/// What a task on the MC/ME coprocessor does. The same hardware performs
/// decoder motion compensation and encoder motion estimation plus the
/// encoder's reconstruction loop (Section 6: "motion compensation / motion
/// estimation (MC/ME) coprocessor").
enum class McTaskKind : std::uint8_t {
  DecodeRecon = 0,  ///< in: residual(0), header(1); out: pixels(2)
  MotionEst = 1,    ///< in: current MBs(0); out: residual(1), hdr->VLE(2), hdr->recon(3)
  EncodeRecon = 2,  ///< in: residual(0), header(1); out: picture-done tokens(2)
};

/// Per-task configuration: the off-chip reference frame store this task
/// uses. MotionEst and EncodeRecon tasks of the same encoding application
/// must point at the same store.
struct McTaskConfig {
  McTaskKind kind = McTaskKind::DecodeRecon;
  sim::Addr frame_store_base = 0;
  std::uint32_t frame_store_slots = 3;
};

/// Motion compensation / motion estimation coprocessor with a dedicated
/// connection to the system bus for off-chip reference frame access.
class McCoproc final : public Coprocessor {
 public:
  static constexpr sim::PortId kInRes = 0;
  static constexpr sim::PortId kInHdr = 1;
  static constexpr sim::PortId kOutPix = 2;
  static constexpr sim::PortId kOutToken = 2;
  static constexpr sim::PortId kInCur = 0;
  static constexpr sim::PortId kOutRes = 1;
  static constexpr sim::PortId kOutHdrVle = 2;
  static constexpr sim::PortId kOutHdrRec = 3;

  McCoproc(sim::Simulator& sim, shell::Shell& sh, mem::OffChipMemory& dram,
           const McParams& params)
      : Coprocessor(sim, sh, "mc"), dram_(dram), params_(params) {}

  void configureTask(sim::TaskId task, const McTaskConfig& cfg);

  [[nodiscard]] std::uint64_t predictionsFetched() const { return predictions_; }
  [[nodiscard]] std::uint64_t searchesPerformed() const { return searches_; }

  /// Picture boundaries as observed by this (last) pipeline stage — the
  /// time intervals used to segment the Figure-10 buffer-fill traces.
  struct PicEvent {
    sim::TaskId task = 0;
    media::PicHeader pic{};
    sim::Cycle at = 0;
  };
  [[nodiscard]] const std::vector<PicEvent>& picEvents() const { return pic_events_; }

  /// Bytes of one frame slot for the given sequence geometry.
  [[nodiscard]] static std::uint32_t frameSlotBytes(const media::SeqHeader& sh) {
    return static_cast<std::uint32_t>(sh.width) * sh.height * 3 / 2;
  }

  void reset() override {
    states_.clear();
    pic_events_.clear();
  }

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override;

 private:
  /// Reference slot rotation shared by all task kinds (mirrors the
  /// two-reference sliding window of MPEG decoding).
  struct RefSlots {
    std::int32_t prev = -1;
    std::int32_t last = -1;

    [[nodiscard]] std::int32_t pickFree(std::uint32_t nslots) const {
      for (std::int32_t s = 0; s < static_cast<std::int32_t>(nslots); ++s) {
        if (s != prev && s != last) return s;
      }
      return 0;
    }
    void rotate(std::int32_t w) {
      prev = last;
      last = w;
    }
  };

  struct TaskState {
    McTaskConfig cfg;
    media::SeqHeader seq{};
    media::PicHeader pic{};
    bool have_seq = false;
    bool prev_pic_was_ref = false;
    RefSlots refs;
    std::int32_t write_slot = -1;
    int mb_index = 0;
    int mb_count = 0;
  };

  sim::Task<void> stepDecodeRecon(sim::TaskId task, TaskState& st);
  sim::Task<void> stepMotionEst(sim::TaskId task, TaskState& st);
  sim::Task<void> stepEncodeRecon(sim::TaskId task, TaskState& st);

  /// Handles the Pic-packet boundary bookkeeping common to all kinds.
  void onPicHeader(TaskState& st, const media::PicHeader& ph);

  // --- frame store access (timed via the system bus) ---

  [[nodiscard]] sim::Addr slotBase(const TaskState& st, std::int32_t slot) const;

  /// Fetches a clamped full-pel region of one plane into `out` (row-major,
  /// w x h). Timing: one burst per plane region.
  sim::Task<void> fetchRegion(TaskState& st, std::int32_t slot, int plane, int x0, int y0, int w,
                              int h, std::vector<std::uint8_t>& out);

  /// Writes a reconstructed macroblock into a frame slot.
  sim::Task<void> writeReconMb(TaskState& st, std::int32_t slot, int mb_x, int mb_y,
                               const media::MbPixels& px);

  /// Motion-compensated prediction exactly matching stages::predictMb,
  /// fetching from the frame store with timing.
  sim::Task<void> predictTimed(TaskState& st, const media::MbHeader& h, media::MbPixels& pred);

  /// Motion search + mode decision for one macroblock (encode tasks).
  /// Fills h.mode and the motion vectors.
  sim::Task<void> decideMode(TaskState& st, const media::MbPixels& cur, media::MbHeader& h);

  mem::OffChipMemory& dram_;
  McParams params_;
  std::map<sim::TaskId, TaskState> states_;
  std::vector<PicEvent> pic_events_;
  std::uint64_t predictions_ = 0;
  std::uint64_t searches_ = 0;

  // Reusable scratch (steps are serial per coprocessor): fetched reference
  // regions and the outgoing-packet serialisation buffer.
  media::ByteWriter writer_;
  std::vector<std::uint8_t> region_, rcb_, rcr_;  // predictTimed fetches
  std::vector<std::uint8_t> win_f_, win_b_;       // decideMode search windows
};

}  // namespace eclipse::coproc
