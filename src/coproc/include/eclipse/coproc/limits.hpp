#pragma once

#include <cstdint>

#include "eclipse/coproc/packet_io.hpp"

namespace eclipse::coproc {

/// Worst-case framed packet sizes on each stream kind, used by producing
/// coprocessors to reserve output space *before* reading input — the
/// deadlock-free step pattern of Section 4. Stream buffers must be at least
/// one worst-case frame (and a multiple of the cache line size).

/// MbCoefs: tag + cbp + intra + qscale + 6 * (u16 count + 64 pairs of 3 bytes).
inline constexpr std::uint32_t kMaxCoefsFrame =
    packet_io::kFrameHeaderBytes + 1 + 3 + 6 * (2 + 64 * 3);

/// MbBlocks: tag + cbp + intra + 6 * 64 coefficients of 2 bytes.
inline constexpr std::uint32_t kMaxBlocksFrame =
    packet_io::kFrameHeaderBytes + 1 + 2 + 6 * 64 * 2;

/// MbPixels: tag + 384 samples.
inline constexpr std::uint32_t kMaxPixelsFrame = packet_io::kFrameHeaderBytes + 1 + 384;

/// MbHeader: tag + serialised header.
inline constexpr std::uint32_t kMaxHeaderFrame = packet_io::kFrameHeaderBytes + 1 + 16;

/// Control packets (Seq / Pic / Eos / tokens).
inline constexpr std::uint32_t kMaxCtlFrame = packet_io::kFrameHeaderBytes + 1 + 12;

/// A conservative bound covering any control packet alongside the payload
/// bound of the given kind (producers reserve max(kind, ctl)).
[[nodiscard]] constexpr std::uint32_t withCtl(std::uint32_t kind_max) {
  return kind_max > kMaxCtlFrame ? kind_max : kMaxCtlFrame;
}

}  // namespace eclipse::coproc
