#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "eclipse/coproc/coprocessor.hpp"
#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/codec.hpp"
#include "eclipse/mem/sram.hpp"

namespace eclipse::coproc {

/// VLD coprocessor timing/behaviour parameters.
struct VldParams {
  sim::Cycle cycles_per_symbol = 2;   ///< table lookups per decoded symbol
  std::uint32_t fetch_chunk = 64;     ///< bytes per off-chip bitstream fetch
};

/// Per-task configuration: where the compressed elementary stream lives in
/// off-chip memory (the VLD "fetches the incoming compressed bit-streams
/// from off-chip memory", Section 6).
struct VldTaskConfig {
  sim::Addr bitstream_addr = 0;
  std::uint32_t bitstream_bytes = 0;
};

/// Variable-length decoding coprocessor.
///
/// Ports per task: 0 = coefficient packets out (to RLSQ),
///                 1 = macroblock headers / motion vectors out (to MC).
/// Each processing step parses one syntax unit (sequence header, picture
/// header, or one macroblock) and emits the corresponding packets on both
/// output streams. The step is restartable: the bit position only advances
/// after output space for the step's packets has been granted.
class VldCoproc final : public Coprocessor {
 public:
  static constexpr sim::PortId kOutCoef = 0;
  static constexpr sim::PortId kOutHdr = 1;

  VldCoproc(sim::Simulator& sim, shell::Shell& sh, mem::OffChipMemory& dram,
            const VldParams& params)
      : Coprocessor(sim, sh, "vld"), dram_(dram), params_(params) {}

  /// Registers a bitstream for `task` (before enabling the task).
  void configureTask(sim::TaskId task, const VldTaskConfig& cfg);

  /// Total VLC symbols decoded (all tasks) — architecture-view statistic.
  [[nodiscard]] std::uint64_t symbolsDecoded() const { return symbols_; }

  // --- recovery protocol (DESIGN §9) --------------------------------
  // Both requests take effect at the task's next processing step; the CPU
  // issues them (and re-enables the task) after a downstream or VLD fault.

  /// Emit a Resync marker on both outputs, then parse-and-discard coded
  /// pictures until the next I-frame (counted in picturesSkipped()).
  void requestResync(sim::TaskId task);

  /// Abort the clip: emit Eos on both outputs and finish the task (used
  /// when the VLD itself faulted and the bit position is unreliable).
  void requestAbort(sim::TaskId task);

  /// Coded pictures skipped while hunting for an I-frame after resync.
  [[nodiscard]] std::uint64_t picturesSkipped() const { return pics_skipped_; }

  void reset() override { states_.clear(); }

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override;

 private:
  enum class Phase { SeqHeader, PicHeader, Macroblock, EndOfStream, Done };

  struct TaskState {
    VldTaskConfig cfg;
    std::unique_ptr<media::BitReader> reader;  // decodes in place from storage
    std::uint64_t fetched_bytes = 0;
    Phase phase = Phase::SeqHeader;
    media::SeqHeader seq{};
    media::PicHeader pic{};
    int pics_done = 0;
    int mb_index = 0;
    int mb_count = 0;

    // Recovery state.
    bool resync_pending = false;  ///< emit a Resync marker at the next step
    bool abort_pending = false;   ///< emit Eos and finish at the next step
    bool skipping = false;        ///< discarding coded data until an I-frame
  };

  /// Issues timed off-chip fetches until the task's fetch high-water covers
  /// the current bit position.
  sim::Task<void> ensureFetched(TaskState& st);

  mem::OffChipMemory& dram_;
  VldParams params_;
  std::map<sim::TaskId, TaskState> states_;
  media::ByteWriter writer_;  // reusable serialisation buffer (steps are serial)
  std::uint64_t symbols_ = 0;
  std::uint64_t pics_skipped_ = 0;
};

}  // namespace eclipse::coproc
