#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "eclipse/coproc/coprocessor.hpp"

namespace eclipse::coproc {

/// The programmable media processor (the paper's DSP-CPU).
///
/// Functions that are application-specific or likely to change with
/// standards run in software here (Section 6: audio decoding, variable
/// length *encoding* and de-multiplexing run on the media processor). The
/// CPU is modelled as a multi-tasking coprocessor whose processing steps
/// execute registered software handlers; its shell is identical to a
/// hardware shell (the media processor shell of Figure 4).
///
/// Handlers must follow the same restartable-step discipline as hardware
/// coprocessors: abort (plain co_return) on a denied GetSpace so the CPU
/// can switch to another software task instead of spinning.
class SoftCpu final : public Coprocessor {
 public:
  using StepHandler = std::function<sim::Task<void>(sim::TaskId task, std::uint32_t info)>;

  SoftCpu(sim::Simulator& sim, shell::Shell& sh) : Coprocessor(sim, sh, "dsp-cpu") {}

  /// Binds a software step handler to a task slot. Task ids are small and
  /// dense (they index the shell's task table), so dispatch is a flat
  /// vector lookup instead of a tree search.
  void registerTask(sim::TaskId task, StepHandler handler) {
    if (handlers_.size() <= static_cast<std::size_t>(task)) {
      handlers_.resize(static_cast<std::size_t>(task) + 1);
    }
    handlers_[static_cast<std::size_t>(task)] = std::move(handler);
  }

  /// Unbinds a task slot's handler (application teardown) so the slot can
  /// be reused by a later application's software task.
  void unregisterTask(sim::TaskId task) {
    if (static_cast<std::size_t>(task) < handlers_.size()) {
      handlers_[static_cast<std::size_t>(task)] = nullptr;
    }
  }

  /// Software tasks call this when their stream ends.
  void finish(sim::TaskId task) { finishTask(task); }

  void reset() override { handlers_.clear(); }

 protected:
  sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) override {
    if (static_cast<std::size_t>(task) >= handlers_.size() ||
        !handlers_[static_cast<std::size_t>(task)]) {
      throw std::logic_error("SoftCpu: unregistered task scheduled");
    }
    co_await handlers_[static_cast<std::size_t>(task)](task, task_info);
  }

 private:
  std::vector<StepHandler> handlers_;  // indexed by task id
};

}  // namespace eclipse::coproc
