#pragma once

#include <cstdint>
#include <vector>

#include "eclipse/coproc/soft_cpu.hpp"
#include "eclipse/media/bitstream.hpp"
#include "eclipse/media/codec.hpp"

namespace eclipse::coproc {

/// Software frame source for the encoding application (runs on the
/// DSP-CPU). Reorders display frames into coded order and streams them as
/// Seq / Pic / MbPixels packets to the MC/ME coprocessor. Emission of
/// pictures that reference earlier frames is gated by frame-done tokens
/// from the encoder reconstruction task, so motion estimation never reads a
/// reference slot that is still being written.
class EncoderSource {
 public:
  static constexpr sim::PortId kOut = 0;
  static constexpr sim::PortId kInToken = 1;

  EncoderSource(SoftCpu& cpu, std::vector<media::Frame> frames, const media::CodecParams& params);

  /// Step handler to register on the SoftCpu.
  sim::Task<void> step(sim::TaskId task, std::uint32_t info);

 private:
  enum class Phase { Seq, PicStart, Mb, Eos, Done };

  SoftCpu& cpu_;
  std::vector<media::Frame> frames_;
  media::CodecParams params_;
  media::SeqHeader seq_{};
  std::vector<media::CodedPicture> order_;
  Phase phase_ = Phase::Seq;
  std::size_t pic_idx_ = 0;
  int mb_index_ = 0;
  int mb_count_ = 0;
  int refs_emitted_ = 0;
  int tokens_received_ = 0;
  media::ByteWriter writer_;  // reusable packet serialisation buffer
};

/// Software variable-length encoder (runs on the DSP-CPU, Section 6).
/// Pairs macroblock headers from motion estimation with quantised
/// coefficients from RLSQ, assembles the elementary stream and emits it as
/// byte chunks to a ByteSink.
class VleTask {
 public:
  static constexpr sim::PortId kInHdr = 0;
  static constexpr sim::PortId kInCoef = 1;
  static constexpr sim::PortId kOut = 2;

  /// `cycles_per_symbol` models the software VLC loop (slower than the
  /// hardware VLD's table lookups).
  VleTask(SoftCpu& cpu, sim::Cycle cycles_per_symbol = 12)
      : cpu_(cpu), cycles_per_symbol_(cycles_per_symbol) {}

  sim::Task<void> step(sim::TaskId task, std::uint32_t info);

  [[nodiscard]] std::uint64_t bitsEmitted() const { return bits_; }

 private:
  static constexpr std::size_t kChunkBytes = 256;

  SoftCpu& cpu_;
  sim::Cycle cycles_per_symbol_;
  media::BitWriter bw_;
  media::SeqHeader seq_{};
  std::vector<std::uint8_t> pending_;
  media::ByteWriter writer_;  // reusable chunk-packet buffer
  bool eos_seen_ = false;
  std::uint64_t bits_ = 0;
};

}  // namespace eclipse::coproc
