#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "eclipse/media/packets.hpp"
#include "eclipse/shell/shell.hpp"
#include "eclipse/sim/coro.hpp"

namespace eclipse::coproc {

/// Length-framed packet transport over an Eclipse stream.
///
/// Every packet on an inter-task stream is framed as
///     u32 length | u8 tag | payload[length-1]
/// Reading is two-phase: GetSpace(4) for the length word, then
/// GetSpace(4+length) for the whole packet — the data-dependent
/// conditional-input pattern of Section 4.2. Nothing is committed until
/// the whole packet is readable, so an aborted step simply re-reads the
/// length word on its next attempt.
///
/// Since the zero-copy transport refactor packets are delivered as
/// WindowViews into the stream FIFO instead of freshly allocated vectors:
/// tryReadView / tryPeekView return a Packet whose `bytes` span the tag +
/// payload directly in SRAM (gathered into the port's reusable scratch
/// buffer only when the packet wraps the cyclic buffer). The old
/// vector-based entry points remain as thin adapters.
namespace packet_io {

inline constexpr std::uint32_t kFrameHeaderBytes = 4;

/// Result of a non-committing packet read attempt.
enum class ReadStatus {
  Ok,       ///< packet read and committed
  Blocked,  ///< insufficient data; nothing committed — abort the step
};

/// One received packet: a zero-copy view plus contiguous access bytes.
///
/// Lifetime: after tryReadView the stream bytes are *committed* — `bytes`
/// (when it points into SRAM) is only safe to use until the caller's next
/// suspension point. After tryPeekView nothing is committed and `bytes`
/// stays valid until the caller PutSpaces `frame_bytes` on the port.
struct Packet {
  ReadStatus status = ReadStatus::Blocked;
  shell::WindowView view;                ///< tag + payload view into the FIFO
  std::uint32_t frame_bytes = 0;         ///< header + length: bytes to PutSpace
  std::span<const std::uint8_t> bytes;   ///< contiguous tag + payload
};

/// Attempts to read one whole packet from (task, port). On Ok the packet
/// bytes are committed and exposed zero-copy in the returned Packet.
sim::Task<Packet> tryReadView(shell::Shell& sh, sim::TaskId task, sim::PortId port);

/// Reads one whole packet *without committing it*. Used by coprocessors
/// with several input streams that must all be readable before any of them
/// may be consumed (Section 4.2's restartable step): peek every input,
/// compute, then PutSpace the returned frame_bytes on each port.
sim::Task<Packet> tryPeekView(shell::Shell& sh, sim::TaskId task, sim::PortId port);

/// Blocking read: waits for space instead of aborting (used by coprocessor
/// designs that park rather than switch, and by the sinks).
sim::Task<Packet> blockingReadView(shell::Shell& sh, sim::TaskId task, sim::PortId port);

// --- vector-based adapters (compatibility for out-of-tree callers) ------

/// Attempts to read one whole packet from (task, port). On Ok the packet
/// (tag byte + payload) is in `out` and its bytes are committed.
sim::Task<ReadStatus> tryRead(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                              std::vector<std::uint8_t>& out);

/// Blocking read: waits for space instead of aborting.
sim::Task<void> blockingRead(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                             std::vector<std::uint8_t>& out);

/// Result of a non-committing read: the packet contents plus the number of
/// stream bytes to PutSpace once the whole processing step is certain to
/// complete.
struct PeekResult {
  ReadStatus status = ReadStatus::Blocked;
  std::uint32_t frame_bytes = 0;
};

/// Reads one whole packet *without committing it* into a vector.
sim::Task<PeekResult> tryPeek(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                              std::vector<std::uint8_t>& out);

// ------------------------------------------------------------------------

/// Attempts to reserve room for a `bytes`-byte packet (frame header
/// included) on an output port. Returns false when the step should abort.
sim::Task<bool> tryReserve(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                           std::uint32_t bytes);

/// Writes and commits one framed packet (tag + payload). Requires room for
/// kFrameHeaderBytes + data.size() to have been granted (tryReserve) or
/// waits for it (`wait` = true). The header and payload are scattered into
/// acquireWrite views of the FIFO.
sim::Task<void> write(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                      std::span<const std::uint8_t> data, bool wait);

/// Frame size on the wire of a packet with `payload_bytes` content bytes.
[[nodiscard]] inline std::uint32_t frameBytes(std::uint32_t payload_bytes) {
  return kFrameHeaderBytes + payload_bytes;
}

/// Tag of a packet previously read (works on views and vectors alike).
[[nodiscard]] inline media::PacketTag tagOf(std::span<const std::uint8_t> packet) {
  if (packet.empty()) throw std::out_of_range("packet_io::tagOf: empty packet");
  return static_cast<media::PacketTag>(packet[0]);
}

/// Payload view (bytes after the tag).
[[nodiscard]] inline std::span<const std::uint8_t> payloadOf(
    std::span<const std::uint8_t> packet) {
  if (packet.empty()) throw std::out_of_range("packet_io::payloadOf: empty packet");
  return packet.subspan(1);
}

}  // namespace packet_io

}  // namespace eclipse::coproc
