#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "eclipse/media/bitstream.hpp"
#include "eclipse/shell/shell.hpp"
#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/fault.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::coproc {

/// Base class for Eclipse coprocessors (Section 4).
///
/// A coprocessor owns one thread of control: an infinite loop over
/// *processing steps*. At each step it asks its shell which task to run
/// (GetTask) and executes one processing step of that task using GetSpace /
/// Read / Write / PutSpace. A step that cannot complete (denied GetSpace)
/// is abandoned without committing anything, so a later retry restarts it
/// from the beginning — the paper's single-entry / multiple-exit pattern.
///
/// Subclasses implement step(); the base runs the control loop and tracks
/// when all of the coprocessor's tasks have finished so the loop can park.
class Coprocessor {
 public:
  Coprocessor(sim::Simulator& sim, shell::Shell& sh, std::string name)
      : sim_(sim), shell_(sh), name_(std::move(name)) {}

  Coprocessor(const Coprocessor&) = delete;
  Coprocessor& operator=(const Coprocessor&) = delete;
  virtual ~Coprocessor() = default;

  /// Spawns the control loop on the simulator, on the shell's shard.
  void start() { sim_.spawn(controlLoop(), name_, shell_.shard()); }

  /// Drops all per-task processing state so the coprocessor is
  /// indistinguishable from a freshly constructed one (instance recycling:
  /// a job must behave bit-identically whether its tasks land on a cold or
  /// a reused coprocessor). Cumulative statistics (steps, symbols, ...)
  /// survive — they never influence timing. Only sound while the control
  /// loop is not running (after Simulator::destroyProcesses()).
  virtual void reset() {}

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] shell::Shell& shell() { return shell_; }
  [[nodiscard]] const shell::Shell& shell() const { return shell_; }
  [[nodiscard]] std::uint64_t stepsExecuted() const { return steps_; }

 protected:
  /// One processing step of `task`. `task_info` is the parameter word from
  /// the task table. Implementations must be restartable: do not commit
  /// (PutSpace) before the step is certain to complete.
  virtual sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) = 0;

  /// Marks one of this coprocessor's tasks as finished (end of stream).
  /// The task is disabled in the shell so the scheduler skips it.
  void finishTask(sim::TaskId task) { shell_.setTaskEnabled(task, false); }

  sim::Simulator& sim_;
  shell::Shell& shell_;

  /// Faults latched by this coprocessor's dispatch wrapper (containment
  /// events, not counting faults latched directly by the shell watchdog).
  [[nodiscard]] std::uint64_t faultsContained() const { return faults_contained_; }

 private:
  sim::Task<void> controlLoop() {
    while (true) {
      const auto r = co_await shell_.getTask();
      ++steps_;

      // Fault hook: an injected hang wedges the coprocessor for N cycles
      // in place of the processing step — no progress, no commits. The
      // shell watchdog sees the overdue step and latches FaultCause::Hang.
      if (sim::FaultInjector* inj = sim_.faults()) {
        if (sim::Cycle hang = inj->taskHangCycles(shell_.id(), r.task, sim_.now())) {
          inj->logTrigger({sim::FaultKind::TaskHang, sim_.now(), shell_.id(), r.task,
                           static_cast<std::uint32_t>(hang)});
          co_await sim_.delay(hang);
          continue;
        }
      }

      // Containment: an exception escaping a processing step no longer
      // unwinds the simulator. It is latched into the task's fault
      // register — cause, task id, shell name and cycle attached — the
      // task is disabled, and the loop moves on to sibling tasks.
      try {
        co_await step(r.task, r.task_info);
      } catch (const media::BitstreamError& e) {
        containFault(r.task, shell::FaultCause::Bitstream, e.what());
      } catch (const std::logic_error& e) {
        containFault(r.task, shell::FaultCause::Protocol, e.what());
      } catch (const std::exception& e) {
        containFault(r.task, shell::FaultCause::TaskException, e.what());
      }
    }
  }

  void containFault(sim::TaskId task, shell::FaultCause cause, const char* what) {
    ++faults_contained_;
    shell_.latchFault(task, cause, -1,
                      name_ + " task " + std::to_string(task) + " @" +
                          std::to_string(sim_.now()) + ": " + what);
  }

  std::string name_;
  std::uint64_t steps_ = 0;
  std::uint64_t faults_contained_ = 0;
};

}  // namespace eclipse::coproc
