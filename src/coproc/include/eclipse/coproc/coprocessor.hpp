#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "eclipse/shell/shell.hpp"
#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::coproc {

/// Base class for Eclipse coprocessors (Section 4).
///
/// A coprocessor owns one thread of control: an infinite loop over
/// *processing steps*. At each step it asks its shell which task to run
/// (GetTask) and executes one processing step of that task using GetSpace /
/// Read / Write / PutSpace. A step that cannot complete (denied GetSpace)
/// is abandoned without committing anything, so a later retry restarts it
/// from the beginning — the paper's single-entry / multiple-exit pattern.
///
/// Subclasses implement step(); the base runs the control loop and tracks
/// when all of the coprocessor's tasks have finished so the loop can park.
class Coprocessor {
 public:
  Coprocessor(sim::Simulator& sim, shell::Shell& sh, std::string name)
      : sim_(sim), shell_(sh), name_(std::move(name)) {}

  Coprocessor(const Coprocessor&) = delete;
  Coprocessor& operator=(const Coprocessor&) = delete;
  virtual ~Coprocessor() = default;

  /// Spawns the control loop on the simulator.
  void start() { sim_.spawn(controlLoop(), name_); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] shell::Shell& shell() { return shell_; }
  [[nodiscard]] const shell::Shell& shell() const { return shell_; }
  [[nodiscard]] std::uint64_t stepsExecuted() const { return steps_; }

 protected:
  /// One processing step of `task`. `task_info` is the parameter word from
  /// the task table. Implementations must be restartable: do not commit
  /// (PutSpace) before the step is certain to complete.
  virtual sim::Task<void> step(sim::TaskId task, std::uint32_t task_info) = 0;

  /// Marks one of this coprocessor's tasks as finished (end of stream).
  /// The task is disabled in the shell so the scheduler skips it.
  void finishTask(sim::TaskId task) { shell_.setTaskEnabled(task, false); }

  sim::Simulator& sim_;
  shell::Shell& shell_;

 private:
  sim::Task<void> controlLoop() {
    while (true) {
      const auto r = co_await shell_.getTask();
      ++steps_;
      co_await step(r.task, r.task_info);
    }
  }

  std::string name_;
  std::uint64_t steps_ = 0;
};

}  // namespace eclipse::coproc
