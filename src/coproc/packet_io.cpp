#include "eclipse/coproc/packet_io.hpp"

#include <cstring>
#include <stdexcept>

namespace eclipse::coproc::packet_io {

namespace {

std::uint32_t decodeLen(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

}  // namespace

sim::Task<ReadStatus> tryRead(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                              std::vector<std::uint8_t>& out) {
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes)) co_return ReadStatus::Blocked;
  std::uint8_t hdr[kFrameHeaderBytes];
  co_await sh.read(task, port, 0, hdr);
  const std::uint32_t len = decodeLen(hdr);
  if (len == 0) throw std::runtime_error("packet_io: zero-length packet frame");
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes + len)) {
    co_return ReadStatus::Blocked;  // abort; the length word stays uncommitted
  }
  out.resize(len);
  co_await sh.read(task, port, kFrameHeaderBytes, out);
  co_await sh.putSpace(task, port, kFrameHeaderBytes + len);
  co_return ReadStatus::Ok;
}

sim::Task<PeekResult> tryPeek(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                              std::vector<std::uint8_t>& out) {
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes)) co_return PeekResult{};
  std::uint8_t hdr[kFrameHeaderBytes];
  co_await sh.read(task, port, 0, hdr);
  const std::uint32_t len = decodeLen(hdr);
  if (len == 0) throw std::runtime_error("packet_io: zero-length packet frame");
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes + len)) co_return PeekResult{};
  out.resize(len);
  co_await sh.read(task, port, kFrameHeaderBytes, out);
  co_return PeekResult{ReadStatus::Ok, kFrameHeaderBytes + len};
}

sim::Task<void> blockingRead(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                             std::vector<std::uint8_t>& out) {
  co_await sh.waitSpace(task, port, kFrameHeaderBytes);
  std::uint8_t hdr[kFrameHeaderBytes];
  co_await sh.read(task, port, 0, hdr);
  const std::uint32_t len = decodeLen(hdr);
  if (len == 0) throw std::runtime_error("packet_io: zero-length packet frame");
  co_await sh.waitSpace(task, port, kFrameHeaderBytes + len);
  out.resize(len);
  co_await sh.read(task, port, kFrameHeaderBytes, out);
  co_await sh.putSpace(task, port, kFrameHeaderBytes + len);
}

sim::Task<bool> tryReserve(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                           std::uint32_t bytes) {
  co_return co_await sh.getSpace(task, port, bytes);
}

sim::Task<void> write(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                      std::span<const std::uint8_t> data, bool wait) {
  const auto len = static_cast<std::uint32_t>(data.size());
  const std::uint32_t total = kFrameHeaderBytes + len;
  if (wait) {
    co_await sh.waitSpace(task, port, total);
  }
  std::uint8_t hdr[kFrameHeaderBytes];
  std::memcpy(hdr, &len, sizeof len);
  co_await sh.write(task, port, 0, hdr);
  co_await sh.write(task, port, kFrameHeaderBytes, data);
  co_await sh.putSpace(task, port, total);
}

}  // namespace eclipse::coproc::packet_io
