#include "eclipse/coproc/packet_io.hpp"

#include <cstring>
#include <stdexcept>

namespace eclipse::coproc::packet_io {

namespace {

std::uint32_t decodeLen(const std::uint8_t* p) {
  std::uint32_t v = 0;
  std::memcpy(&v, p, sizeof v);
  return v;
}

/// Reads the 4-byte length word at the access point. The header may wrap
/// the cyclic buffer, so it is always gathered into a local array.
sim::Task<std::uint32_t> readLen(shell::Shell& sh, sim::TaskId task, sim::PortId port) {
  shell::WindowView v = co_await sh.acquireRead(task, port, 0, kFrameHeaderBytes);
  std::uint8_t hdr[kFrameHeaderBytes];
  v.copyTo(hdr);
  const std::uint32_t len = decodeLen(hdr);
  if (len == 0) throw std::runtime_error("packet_io: zero-length packet frame");
  co_return len;
}

}  // namespace

sim::Task<Packet> tryReadView(shell::Shell& sh, sim::TaskId task, sim::PortId port) {
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes)) co_return Packet{};
  const std::uint32_t len = co_await readLen(sh, task, port);
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes + len)) {
    co_return Packet{};  // abort; the length word stays uncommitted
  }
  Packet p;
  p.view = co_await sh.acquireRead(task, port, kFrameHeaderBytes, len);
  p.frame_bytes = kFrameHeaderBytes + len;
  p.bytes = p.view.gather(sh.portScratch(task, port));
  // Commit before returning: the producer cannot observe the released
  // space until its sync message lands (sync_latency > 0 cycles away), so
  // p.bytes stays intact until the caller's next suspension point.
  co_await sh.putSpace(task, port, p.frame_bytes);
  p.status = ReadStatus::Ok;
  co_return p;
}

sim::Task<Packet> tryPeekView(shell::Shell& sh, sim::TaskId task, sim::PortId port) {
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes)) co_return Packet{};
  const std::uint32_t len = co_await readLen(sh, task, port);
  if (!co_await sh.getSpace(task, port, kFrameHeaderBytes + len)) co_return Packet{};
  Packet p;
  p.view = co_await sh.acquireRead(task, port, kFrameHeaderBytes, len);
  p.frame_bytes = kFrameHeaderBytes + len;
  p.bytes = p.view.gather(sh.portScratch(task, port));
  p.status = ReadStatus::Ok;
  co_return p;
}

sim::Task<Packet> blockingReadView(shell::Shell& sh, sim::TaskId task, sim::PortId port) {
  co_await sh.waitSpace(task, port, kFrameHeaderBytes);
  const std::uint32_t len = co_await readLen(sh, task, port);
  co_await sh.waitSpace(task, port, kFrameHeaderBytes + len);
  Packet p;
  p.view = co_await sh.acquireRead(task, port, kFrameHeaderBytes, len);
  p.frame_bytes = kFrameHeaderBytes + len;
  p.bytes = p.view.gather(sh.portScratch(task, port));
  co_await sh.putSpace(task, port, p.frame_bytes);
  p.status = ReadStatus::Ok;
  co_return p;
}

sim::Task<ReadStatus> tryRead(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                              std::vector<std::uint8_t>& out) {
  Packet p = co_await tryReadView(sh, task, port);
  if (p.status != ReadStatus::Ok) co_return ReadStatus::Blocked;
  out.assign(p.bytes.begin(), p.bytes.end());
  co_return ReadStatus::Ok;
}

sim::Task<PeekResult> tryPeek(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                              std::vector<std::uint8_t>& out) {
  Packet p = co_await tryPeekView(sh, task, port);
  if (p.status != ReadStatus::Ok) co_return PeekResult{};
  out.assign(p.bytes.begin(), p.bytes.end());
  co_return PeekResult{ReadStatus::Ok, p.frame_bytes};
}

sim::Task<void> blockingRead(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                             std::vector<std::uint8_t>& out) {
  Packet p = co_await blockingReadView(sh, task, port);
  out.assign(p.bytes.begin(), p.bytes.end());
}

sim::Task<bool> tryReserve(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                           std::uint32_t bytes) {
  co_return co_await sh.getSpace(task, port, bytes);
}

sim::Task<void> write(shell::Shell& sh, sim::TaskId task, sim::PortId port,
                      std::span<const std::uint8_t> data, bool wait) {
  const auto len = static_cast<std::uint32_t>(data.size());
  const std::uint32_t total = kFrameHeaderBytes + len;
  if (wait) {
    co_await sh.waitSpace(task, port, total);
  }
  std::uint8_t hdr[kFrameHeaderBytes];
  std::memcpy(hdr, &len, sizeof len);
  // Two separate acquires — the same two transfer charges as the classic
  // header write + payload write.
  {
    shell::WindowView v = co_await sh.acquireWrite(task, port, 0, kFrameHeaderBytes);
    v.copyFrom(hdr);
  }
  {
    shell::WindowView v = co_await sh.acquireWrite(task, port, kFrameHeaderBytes, data.size());
    v.copyFrom(data);
  }
  co_await sh.putSpace(task, port, total);
}

}  // namespace eclipse::coproc::packet_io
