#include "eclipse/coproc/dct_coproc.hpp"

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"

namespace eclipse::coproc {

sim::Task<void> DctCoproc::step(sim::TaskId task, std::uint32_t task_info) {
  if (!co_await shell_.getSpace(task, kOut, withCtl(kMaxBlocksFrame))) co_return;
  std::vector<std::uint8_t> pkt;
  if (co_await packet_io::tryRead(shell_, task, kIn, pkt) == packet_io::ReadStatus::Blocked) {
    co_return;
  }
  const auto tag = packet_io::tagOf(pkt);
  if (tag == media::PacketTag::Mb) {
    media::MbBlocks in, out;
    media::ByteReader r(packet_io::payloadOf(pkt));
    media::get(r, in);
    int nb;
    if ((task_info & kDctInfoForward) != 0) {
      media::stages::fdctMb(in, out);
      nb = media::kBlocksPerMacroblock;  // forward transforms every block
    } else {
      media::stages::idctMb(in, out);
      nb = 0;  // inverse only processes coded blocks
      for (int b = 0; b < media::kBlocksPerMacroblock; ++b) {
        if ((in.cbp & (1u << b)) != 0) ++nb;
      }
    }
    blocks_ += static_cast<std::uint64_t>(nb);
    co_await sim_.delay(static_cast<sim::Cycle>(nb) * params_.blockCycles());
    co_await packet_io::write(shell_, task, kOut, media::packPacket(media::PacketTag::Mb, out),
                              /*wait=*/false);
    co_return;
  }
  // Control packets pass through unchanged.
  co_await packet_io::write(shell_, task, kOut, pkt, /*wait=*/false);
  if (tag == media::PacketTag::Eos) finishTask(task);
}

}  // namespace eclipse::coproc
