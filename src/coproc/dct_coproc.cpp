#include "eclipse/coproc/dct_coproc.hpp"

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"

namespace eclipse::coproc {

sim::Task<void> DctCoproc::step(sim::TaskId task, std::uint32_t task_info) {
  if (!co_await shell_.getSpace(task, kOut, withCtl(kMaxBlocksFrame))) co_return;
  const packet_io::Packet p = co_await packet_io::tryReadView(shell_, task, kIn);
  if (p.status == packet_io::ReadStatus::Blocked) co_return;
  const auto tag = packet_io::tagOf(p.bytes);
  // Discard mode (recovery): drop stale packets until the Resync marker
  // arrives; the marker itself (and Eos) passes through via the control
  // path below so downstream stages realign too.
  if (auto d = discard_.find(task); d != discard_.end() && d->second) {
    if (tag == media::PacketTag::Resync || tag == media::PacketTag::Eos) {
      d->second = false;
    } else {
      ++discarded_;
      co_return;
    }
  }
  if (tag == media::PacketTag::Mb) {
    media::MbBlocks in, out;
    // Parsed straight out of the committed view — fully consumed before
    // the delay suspension below.
    media::ByteReader r(packet_io::payloadOf(p.bytes));
    media::get(r, in);
    int nb;
    if ((task_info & kDctInfoForward) != 0) {
      media::stages::fdctMb(in, out);
      nb = media::kBlocksPerMacroblock;  // forward transforms every block
    } else {
      media::stages::idctMb(in, out);
      nb = 0;  // inverse only processes coded blocks
      for (int b = 0; b < media::kBlocksPerMacroblock; ++b) {
        if ((in.cbp & (1u << b)) != 0) ++nb;
      }
    }
    blocks_ += static_cast<std::uint64_t>(nb);
    co_await sim_.delay(static_cast<sim::Cycle>(nb) * params_.blockCycles());
    co_await packet_io::write(shell_, task, kOut,
                              media::packPacketInto(writer_, media::PacketTag::Mb, out),
                              /*wait=*/false);
    co_return;
  }
  // Control packets pass through unchanged; staged in the reusable buffer
  // because the view does not survive write()'s suspension points.
  ctl_.assign(p.bytes.begin(), p.bytes.end());
  co_await packet_io::write(shell_, task, kOut, ctl_, /*wait=*/false);
  if (tag == media::PacketTag::Eos) finishTask(task);
}

}  // namespace eclipse::coproc
