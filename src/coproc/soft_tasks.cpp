#include "eclipse/coproc/soft_tasks.hpp"

#include <algorithm>
#include <stdexcept>

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"

namespace eclipse::coproc {

EncoderSource::EncoderSource(SoftCpu& cpu, std::vector<media::Frame> frames,
                             const media::CodecParams& params)
    : cpu_(cpu), frames_(std::move(frames)), params_(params) {
  if (frames_.empty()) throw std::invalid_argument("EncoderSource: no frames");
  seq_ = params_.toSeqHeader(static_cast<int>(frames_.size()));
  order_ = media::codedOrder(static_cast<int>(frames_.size()), params_.gop);
  mb_count_ = (params_.width / media::kMbSize) * (params_.height / media::kMbSize);
}

sim::Task<void> EncoderSource::step(sim::TaskId task, std::uint32_t /*info*/) {
  auto& sh = cpu_.shell();
  switch (phase_) {
    case Phase::Seq: {
      if (!co_await sh.getSpace(task, kOut, withCtl(kMaxPixelsFrame))) co_return;
      co_await packet_io::write(sh, task, kOut,
                                media::packPacketInto(writer_, media::PacketTag::Seq, seq_),
                                /*wait=*/false);
      phase_ = Phase::PicStart;
      break;
    }
    case Phase::PicStart: {
      const auto& cp = order_[pic_idx_];
      if (cp.type != media::FrameType::I) {
        // All previously emitted reference pictures must be reconstructed
        // before a dependent picture enters motion estimation.
        while (tokens_received_ < refs_emitted_) {
          const packet_io::Packet tok = co_await packet_io::tryReadView(sh, task, kInToken);
          if (tok.status == packet_io::ReadStatus::Blocked) {
            co_return;  // abort; retry when the token arrives
          }
          if (packet_io::tagOf(tok.bytes) != media::PacketTag::Pic) {
            throw std::runtime_error("EncoderSource: unexpected token packet");
          }
          ++tokens_received_;
        }
      }
      if (!co_await sh.getSpace(task, kOut, withCtl(kMaxPixelsFrame))) co_return;
      media::PicHeader ph;
      ph.type = cp.type;
      ph.temporal_ref = static_cast<std::uint16_t>(cp.display_idx);
      ph.qscale = seq_.qscale;
      co_await packet_io::write(sh, task, kOut,
                                media::packPacketInto(writer_, media::PacketTag::Pic, ph),
                                /*wait=*/false);
      mb_index_ = 0;
      phase_ = Phase::Mb;
      break;
    }
    case Phase::Mb: {
      if (!co_await sh.getSpace(task, kOut, withCtl(kMaxPixelsFrame))) co_return;
      const auto& cp = order_[pic_idx_];
      const media::Frame& f = frames_[static_cast<std::size_t>(cp.display_idx)];
      const int mb_w = params_.width / media::kMbSize;
      media::MbPixels px;
      media::stages::extractMb(f, mb_index_ % mb_w, mb_index_ / mb_w, px);
      co_await packet_io::write(sh, task, kOut,
                                media::packPacketInto(writer_, media::PacketTag::Mb, px),
                                /*wait=*/false);
      if (++mb_index_ >= mb_count_) {
        if (cp.type != media::FrameType::B) ++refs_emitted_;
        if (++pic_idx_ >= order_.size()) {
          phase_ = Phase::Eos;
        } else {
          phase_ = Phase::PicStart;
        }
      }
      break;
    }
    case Phase::Eos: {
      if (!co_await sh.getSpace(task, kOut, withCtl(kMaxPixelsFrame))) co_return;
      co_await packet_io::write(sh, task, kOut, media::packTag(media::PacketTag::Eos),
                                /*wait=*/false);
      phase_ = Phase::Done;
      cpu_.finish(task);
      break;
    }
    case Phase::Done:
      cpu_.finish(task);
      break;
  }
}

sim::Task<void> VleTask::step(sim::TaskId task, std::uint32_t /*info*/) {
  auto& sh = cpu_.shell();
  const std::uint32_t out_reserve = withCtl(packet_io::frameBytes(1 + kChunkBytes));

  // Drain pending output first: one chunk per step keeps steps short.
  if (pending_.size() >= kChunkBytes || (eos_seen_ && !pending_.empty())) {
    if (!co_await sh.getSpace(task, kOut, out_reserve)) co_return;
    const std::size_t n = std::min(pending_.size(), kChunkBytes);
    writer_.clear();
    writer_.u8(static_cast<std::uint8_t>(media::PacketTag::Mb));
    writer_.bytes(std::span<const std::uint8_t>(pending_.data(), n));
    co_await packet_io::write(sh, task, kOut, writer_.data(), /*wait=*/false);
    pending_.erase(pending_.begin(), pending_.begin() + static_cast<std::ptrdiff_t>(n));
    co_return;
  }
  if (eos_seen_) {
    if (!co_await sh.getSpace(task, kOut, out_reserve)) co_return;
    co_await packet_io::write(sh, task, kOut, media::packTag(media::PacketTag::Eos),
                              /*wait=*/false);
    cpu_.finish(task);
    co_return;
  }

  // Peeked views: valid until the PutSpaces at the end of the step.
  const packet_io::Packet hdr = co_await packet_io::tryPeekView(sh, task, kInHdr);
  if (hdr.status == packet_io::ReadStatus::Blocked) co_return;
  const packet_io::Packet coef = co_await packet_io::tryPeekView(sh, task, kInCoef);
  if (coef.status == packet_io::ReadStatus::Blocked) co_return;
  if (packet_io::tagOf(hdr.bytes) != packet_io::tagOf(coef.bytes)) {
    throw std::runtime_error("VleTask: header/coefficient streams out of step");
  }

  switch (packet_io::tagOf(hdr.bytes)) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, seq_);
      media::stages::writeSeqHeader(bw_, seq_);
      co_await cpu_.simulator().delay(8 * cycles_per_symbol_);
      break;
    }
    case media::PacketTag::Pic: {
      media::PicHeader ph;
      media::ByteReader r(packet_io::payloadOf(hdr.bytes));
      media::get(r, ph);
      media::stages::writePicHeader(bw_, ph);
      co_await cpu_.simulator().delay(3 * cycles_per_symbol_);
      break;
    }
    case media::PacketTag::Mb: {
      media::MbHeader h;
      media::MbCoefs coefs;
      {
        media::ByteReader rh(packet_io::payloadOf(hdr.bytes));
        media::get(rh, h);
        media::ByteReader rc(packet_io::payloadOf(coef.bytes));
        media::get(rc, coefs);
      }
      h.cbp = coefs.cbp;  // the coded block pattern is known after quantisation
      media::stages::writeMb(bw_, h, coefs);
      std::uint64_t symbols = 4;
      for (const auto& b : coefs.blocks) symbols += b.size() + 1;
      co_await cpu_.simulator().delay(symbols * cycles_per_symbol_);
      break;
    }
    case media::PacketTag::Resync:
      break;  // marker is meaningless inside an elementary bitstream
    case media::PacketTag::Eos: {
      // Byte-align and queue the final bytes for draining.
      auto tail = bw_.finish();
      pending_.insert(pending_.end(), tail.begin(), tail.end());
      eos_seen_ = true;
      break;
    }
  }

  auto chunk = bw_.drainFullBytes();
  bits_ += chunk.size() * 8;
  pending_.insert(pending_.end(), chunk.begin(), chunk.end());

  co_await sh.putSpace(task, kInHdr, hdr.frame_bytes);
  co_await sh.putSpace(task, kInCoef, coef.frame_bytes);
}

}  // namespace eclipse::coproc
