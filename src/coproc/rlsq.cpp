#include "eclipse/coproc/rlsq.hpp"

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"

namespace eclipse::coproc {

namespace {

std::uint64_t pairCount(const media::MbCoefs& c) {
  std::uint64_t n = 0;
  for (const auto& b : c.blocks) n += b.size();
  return n;
}

int codedBlocks(std::uint8_t cbp) {
  int n = 0;
  for (int b = 0; b < media::kBlocksPerMacroblock; ++b) {
    if ((cbp & (1u << b)) != 0) ++n;
  }
  return n;
}

}  // namespace

sim::Task<void> RlsqCoproc::step(sim::TaskId task, std::uint32_t task_info) {
  TaskState& st = states_[task];
  if ((task_info & kRlsqInfoEncode) != 0) {
    co_await stepEncode(task, st);
  } else {
    co_await stepDecode(task, st);
  }
}

sim::Task<void> RlsqCoproc::stepDecode(sim::TaskId task, TaskState& st) {
  if (!co_await shell_.getSpace(task, kOut, withCtl(kMaxBlocksFrame))) co_return;
  const packet_io::Packet p = co_await packet_io::tryReadView(shell_, task, kIn);
  if (p.status == packet_io::ReadStatus::Blocked) co_return;
  // Discard mode (recovery): drop everything up to the Resync marker that
  // the restarted VLD emits; Eos still terminates the task cleanly.
  if (st.discard) {
    const auto tag = packet_io::tagOf(p.bytes);
    if (tag == media::PacketTag::Resync) {
      st.discard = false;
      co_await packet_io::write(shell_, task, kOut, media::packTag(media::PacketTag::Resync),
                                /*wait=*/false);
    } else if (tag == media::PacketTag::Eos) {
      st.discard = false;
      co_await packet_io::write(shell_, task, kOut, media::packTag(media::PacketTag::Eos),
                                /*wait=*/false);
      finishTask(task);
    } else {
      ++discarded_;
    }
    co_return;
  }
  // The committed view is parsed before the first suspension point; the
  // pass-through packets are re-serialised from the parsed state (the
  // byte-level codec is deterministic, so the re-pack is bit-identical).
  switch (packet_io::tagOf(p.bytes)) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(p.bytes));
      media::get(r, st.seq);
      st.have_seq = true;
      co_await packet_io::write(shell_, task, kOut,
                                media::packPacketInto(writer_, media::PacketTag::Seq, st.seq),
                                /*wait=*/false);
      break;
    }
    case media::PacketTag::Pic: {
      media::ByteReader r(packet_io::payloadOf(p.bytes));
      media::get(r, st.pic);
      co_await packet_io::write(shell_, task, kOut,
                                media::packPacketInto(writer_, media::PacketTag::Pic, st.pic),
                                /*wait=*/false);
      break;
    }
    case media::PacketTag::Mb: {
      media::MbCoefs coefs;
      media::ByteReader r(packet_io::payloadOf(p.bytes));
      media::get(r, coefs);
      media::MbBlocks out;
      media::stages::rlsqDecode(coefs, coefs.intra != 0, st.seq, out);
      out.intra = coefs.intra;
      const std::uint64_t np = pairCount(coefs);
      const int nb = codedBlocks(coefs.cbp);
      pairs_ += np;
      blocks_ += static_cast<std::uint64_t>(nb);
      co_await sim_.delay(np * params_.cycles_per_pair +
                          static_cast<sim::Cycle>(nb) * params_.cycles_per_block);
      co_await packet_io::write(shell_, task, kOut,
                                media::packPacketInto(writer_, media::PacketTag::Mb, out),
                                /*wait=*/false);
      break;
    }
    case media::PacketTag::Resync: {
      // Pass the marker through so downstream stages resynchronise too.
      co_await packet_io::write(shell_, task, kOut, media::packTag(media::PacketTag::Resync),
                                /*wait=*/false);
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOut, media::packTag(media::PacketTag::Eos),
                                /*wait=*/false);
      finishTask(task);
      break;
    }
  }
}

sim::Task<void> RlsqCoproc::stepEncode(sim::TaskId task, TaskState& st) {
  // Two consumers: the variable-length encoder and the reconstruction loop.
  // Reconstruction only receives reference pictures (B pictures are never
  // prediction sources), so the recon stream sees a data-dependent subset.
  if (!co_await shell_.getSpace(task, kOut, withCtl(kMaxCoefsFrame))) co_return;
  if (!co_await shell_.getSpace(task, kOutRecon, withCtl(kMaxCoefsFrame))) co_return;
  const packet_io::Packet p = co_await packet_io::tryReadView(shell_, task, kIn);
  if (p.status == packet_io::ReadStatus::Blocked) co_return;
  switch (packet_io::tagOf(p.bytes)) {
    case media::PacketTag::Seq: {
      media::ByteReader r(packet_io::payloadOf(p.bytes));
      media::get(r, st.seq);
      st.pic.qscale = st.seq.qscale;
      st.have_seq = true;
      // One re-pack feeds both writes; the writer is untouched in between,
      // so the span stays valid across the suspensions.
      const auto out_pkt = media::packPacketInto(writer_, media::PacketTag::Seq, st.seq);
      co_await packet_io::write(shell_, task, kOut, out_pkt, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutRecon, out_pkt, /*wait=*/false);
      break;
    }
    case media::PacketTag::Pic: {
      media::ByteReader r(packet_io::payloadOf(p.bytes));
      media::get(r, st.pic);
      st.pic_is_ref = st.pic.type != media::FrameType::B;
      const auto out_pkt = media::packPacketInto(writer_, media::PacketTag::Pic, st.pic);
      co_await packet_io::write(shell_, task, kOut, out_pkt, /*wait=*/false);
      if (st.pic_is_ref) {
        co_await packet_io::write(shell_, task, kOutRecon, out_pkt, /*wait=*/false);
      }
      break;
    }
    case media::PacketTag::Mb: {
      media::MbBlocks in;
      media::ByteReader r(packet_io::payloadOf(p.bytes));
      media::get(r, in);
      media::MbCoefs out;
      media::stages::rlsqEncode(in, in.intra != 0, st.seq, st.pic.qscale, out);
      const std::uint64_t np = pairCount(out);
      pairs_ += np;
      blocks_ += static_cast<std::uint64_t>(media::kBlocksPerMacroblock);
      co_await sim_.delay(np * params_.cycles_per_pair +
                          static_cast<sim::Cycle>(media::kBlocksPerMacroblock) *
                              params_.cycles_per_block);
      const auto out_pkt = media::packPacketInto(writer_, media::PacketTag::Mb, out);
      co_await packet_io::write(shell_, task, kOut, out_pkt, /*wait=*/false);
      if (st.pic_is_ref) {
        co_await packet_io::write(shell_, task, kOutRecon, out_pkt, /*wait=*/false);
      }
      break;
    }
    case media::PacketTag::Resync: {
      const auto out_pkt = media::packTag(media::PacketTag::Resync);
      co_await packet_io::write(shell_, task, kOut, out_pkt, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutRecon, out_pkt, /*wait=*/false);
      break;
    }
    case media::PacketTag::Eos: {
      co_await packet_io::write(shell_, task, kOut, media::packTag(media::PacketTag::Eos),
                                /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutRecon, media::packTag(media::PacketTag::Eos),
                                /*wait=*/false);
      finishTask(task);
      break;
    }
  }
}

}  // namespace eclipse::coproc
