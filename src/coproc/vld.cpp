#include "eclipse/coproc/vld.hpp"

#include <algorithm>
#include <stdexcept>

#include "eclipse/coproc/limits.hpp"
#include "eclipse/coproc/packet_io.hpp"

namespace eclipse::coproc {

void VldCoproc::configureTask(sim::TaskId task, const VldTaskConfig& cfg) {
  TaskState st;
  st.cfg = cfg;
  // The bit reader decodes straight out of the (stable) off-chip storage
  // image — the compressed stream is read-only while the task runs. The
  // timing of off-chip fetches is modelled separately in ensureFetched
  // (DESIGN.md: function/timing split).
  st.reader = std::make_unique<media::BitReader>(
      dram_.storage().view().subspan(cfg.bitstream_addr, cfg.bitstream_bytes));
  states_[task] = std::move(st);
}

sim::Task<void> VldCoproc::ensureFetched(TaskState& st) {
  const std::uint64_t needed_bytes = (st.reader->bitPosition() + 7) / 8;
  while (st.fetched_bytes < needed_bytes) {
    const std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        params_.fetch_chunk, st.cfg.bitstream_bytes - st.fetched_bytes));
    // Timing-only burst: the bytes are already visible via the reader span.
    co_await dram_.touchRead(chunk, static_cast<int>(shell_.id()));
    st.fetched_bytes += chunk;
  }
}

void VldCoproc::requestResync(sim::TaskId task) {
  auto it = states_.find(task);
  if (it == states_.end()) throw std::logic_error("VldCoproc::requestResync: unknown task");
  it->second.resync_pending = true;
}

void VldCoproc::requestAbort(sim::TaskId task) {
  auto it = states_.find(task);
  if (it == states_.end()) throw std::logic_error("VldCoproc::requestAbort: unknown task");
  it->second.abort_pending = true;
}

sim::Task<void> VldCoproc::step(sim::TaskId task, std::uint32_t /*task_info*/) {
  auto it = states_.find(task);
  if (it == states_.end()) throw std::logic_error("VldCoproc: unconfigured task scheduled");
  TaskState& st = it->second;

  // Both output streams must accept this step's packets before anything is
  // consumed from the bit-stream; otherwise abandon the step (the shell
  // recorded the denial, so the scheduler will not re-pick the task until
  // space arrives).
  if (!co_await shell_.getSpace(task, kOutCoef, withCtl(kMaxCoefsFrame))) co_return;
  if (!co_await shell_.getSpace(task, kOutHdr, withCtl(kMaxHeaderFrame))) co_return;

  // Recovery requests (CPU-issued, DESIGN §9) take effect between syntax
  // units, once output space for the markers is granted.
  if (st.abort_pending) {
    st.abort_pending = false;
    st.resync_pending = false;
    if (st.phase != Phase::Done) {
      const auto pkt = media::packTag(media::PacketTag::Eos);
      co_await packet_io::write(shell_, task, kOutCoef, pkt, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdr, pkt, /*wait=*/false);
      st.phase = Phase::Done;
    }
    finishTask(task);
    co_return;
  }
  if (st.resync_pending) {
    st.resync_pending = false;
    if (st.phase == Phase::PicHeader || st.phase == Phase::Macroblock) {
      // Tell every downstream stage to drop in-flight state, then discard
      // the rest of the current picture and hunt for the next I-frame.
      const auto pkt = media::packTag(media::PacketTag::Resync);
      co_await packet_io::write(shell_, task, kOutCoef, pkt, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdr, pkt, /*wait=*/false);
      st.skipping = true;
    }
  }

  switch (st.phase) {
    case Phase::SeqHeader: {
      st.seq = media::stages::parseSeqHeader(*st.reader);
      st.mb_count = (st.seq.width / media::kMbSize) * (st.seq.height / media::kMbSize);
      co_await ensureFetched(st);
      co_await sim_.delay(8 * params_.cycles_per_symbol);
      symbols_ += 8;
      const auto pkt = media::packPacketInto(writer_, media::PacketTag::Seq, st.seq);
      co_await packet_io::write(shell_, task, kOutCoef, pkt, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdr, pkt, /*wait=*/false);
      st.phase = Phase::PicHeader;
      break;
    }
    case Phase::PicHeader: {
      st.pic = media::stages::parsePicHeader(*st.reader);
      co_await ensureFetched(st);
      co_await sim_.delay(3 * params_.cycles_per_symbol);
      symbols_ += 3;
      if (st.skipping) {
        if (st.pic.type == media::FrameType::I) {
          st.skipping = false;  // realigned: decode this picture normally
        } else {
          // Still hunting for an I-frame: parse (to keep the bit position
          // honest) but emit nothing — this coded picture is dropped.
          ++pics_skipped_;
          st.mb_index = 0;
          st.phase = Phase::Macroblock;
          break;
        }
      }
      const auto pkt = media::packPacketInto(writer_, media::PacketTag::Pic, st.pic);
      co_await packet_io::write(shell_, task, kOutCoef, pkt, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdr, pkt, /*wait=*/false);
      st.mb_index = 0;
      st.phase = Phase::Macroblock;
      break;
    }
    case Phase::Macroblock: {
      const int mb_w = st.seq.width / media::kMbSize;
      const auto mb_x = static_cast<std::uint16_t>(st.mb_index % mb_w);
      const auto mb_y = static_cast<std::uint16_t>(st.mb_index / mb_w);
      auto parsed = media::stages::parseMb(*st.reader, st.pic.type, mb_x, mb_y, st.pic.qscale);
      co_await ensureFetched(st);
      co_await sim_.delay(static_cast<sim::Cycle>(parsed.symbols) * params_.cycles_per_symbol);
      symbols_ += static_cast<std::uint64_t>(parsed.symbols);
      if (!st.skipping) {
        co_await packet_io::write(
            shell_, task, kOutCoef,
            media::packPacketInto(writer_, media::PacketTag::Mb, parsed.coefs),
            /*wait=*/false);
        co_await packet_io::write(
            shell_, task, kOutHdr,
            media::packPacketInto(writer_, media::PacketTag::Mb, parsed.header),
            /*wait=*/false);
      }
      if (++st.mb_index >= st.mb_count) {
        st.phase = ++st.pics_done >= st.seq.frame_count ? Phase::EndOfStream : Phase::PicHeader;
      }
      break;
    }
    case Phase::EndOfStream: {
      const auto pkt = media::packTag(media::PacketTag::Eos);
      co_await packet_io::write(shell_, task, kOutCoef, pkt, /*wait=*/false);
      co_await packet_io::write(shell_, task, kOutHdr, pkt, /*wait=*/false);
      st.phase = Phase::Done;
      finishTask(task);
      break;
    }
    case Phase::Done:
      finishTask(task);
      break;
  }
}

}  // namespace eclipse::coproc
