#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "eclipse/sim/types.hpp"

namespace eclipse::mem {

/// Memory-mapped control bus (the paper's PI-bus).
///
/// The main CPU configures applications at run time by programming the
/// stream and task tables in the shells through this bus, and reads back
/// accumulated performance measurements. Configuration traffic is rare and
/// not performance-critical, so the model is functional (untimed); the
/// register map itself — every table field addressable as a 32-bit word —
/// is modelled faithfully so that run-time (re)configuration goes through
/// the same path hardware would use.
class PiBus {
 public:
  using ReadFn = std::function<std::uint32_t(sim::Addr offset)>;
  using WriteFn = std::function<void(sim::Addr offset, std::uint32_t value)>;

  /// Maps a device's register window [base, base+size) onto the bus.
  void attach(std::string name, sim::Addr base, sim::Addr size, ReadFn read, WriteFn write) {
    for (const auto& d : devices_) {
      const bool overlap = base < d.base + d.size && d.base < base + size;
      if (overlap) {
        throw std::runtime_error("PiBus: window of '" + name + "' overlaps '" + d.name + "'");
      }
    }
    devices_.push_back(Device{std::move(name), base, size, std::move(read), std::move(write)});
  }

  /// Unmaps the device whose window starts at `base` (e.g. a sink shell
  /// removed when an instance is recycled). Returns false when no window
  /// starts there.
  bool detach(sim::Addr base) {
    for (auto it = devices_.begin(); it != devices_.end(); ++it) {
      if (it->base == base) {
        devices_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::uint32_t read(sim::Addr addr) const {
    const Device& d = find(addr);
    ++reads_;
    return d.read(addr - d.base);
  }

  void write(sim::Addr addr, std::uint32_t value) {
    const Device& d = find(addr);
    ++writes_;
    d.write(addr - d.base, value);
  }

  [[nodiscard]] std::uint64_t readCount() const { return reads_; }
  [[nodiscard]] std::uint64_t writeCount() const { return writes_; }

 private:
  struct Device {
    std::string name;
    sim::Addr base;
    sim::Addr size;
    ReadFn read;
    WriteFn write;
  };

  const Device& find(sim::Addr addr) const {
    for (const auto& d : devices_) {
      if (addr >= d.base && addr < d.base + d.size) return d;
    }
    throw std::out_of_range("PiBus: no device at address " + std::to_string(addr));
  }

  std::vector<Device> devices_;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace eclipse::mem
