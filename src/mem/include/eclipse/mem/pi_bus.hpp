#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "eclipse/sim/simulator.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::mem {

/// Memory-mapped control bus (the paper's PI-bus).
///
/// The main CPU configures applications at run time by programming the
/// stream and task tables in the shells through this bus, and reads back
/// accumulated performance measurements. Configuration traffic is rare and
/// not performance-critical, so the model is functional (untimed); the
/// register map itself — every table field addressable as a 32-bit word —
/// is modelled faithfully so that run-time (re)configuration goes through
/// the same path hardware would use.
class PiBus {
 public:
  using ReadFn = std::function<std::uint32_t(sim::Addr offset)>;
  using WriteFn = std::function<void(sim::Addr offset, std::uint32_t value)>;

  /// Maps a device's register window [base, base+size) onto the bus.
  void attach(std::string name, sim::Addr base, sim::Addr size, ReadFn read, WriteFn write) {
    for (const auto& d : devices_) {
      const bool overlap = base < d.base + d.size && d.base < base + size;
      if (overlap) {
        throw std::runtime_error("PiBus: window of '" + name + "' overlaps '" + d.name + "'");
      }
    }
    devices_.push_back(Device{std::move(name), base, size, std::move(read), std::move(write)});
  }

  /// Tags the device window starting at `base` with the shard executing the
  /// device behind it. With a bound simulator (see bindSimulator) sharded
  /// accesses from a *different* lane are rejected — MMIO handlers poke the
  /// device's tables directly, so they must run where the device runs.
  /// Accesses from outside window execution (the control plane programming
  /// tables between runs) are always allowed.
  void setWindowShard(sim::Addr base, sim::ShardId shard) {
    for (auto& d : devices_) {
      if (d.base == base) {
        d.shard = shard;
        return;
      }
    }
    throw std::out_of_range("PiBus: no window at base " + std::to_string(base));
  }
  [[nodiscard]] sim::ShardId windowShard(sim::Addr base) const {
    for (const auto& d : devices_) {
      if (d.base == base) return d.shard;
    }
    return 0;
  }

  /// Enables shard-affinity checking against this simulator's execution
  /// context. The bus model itself stays untimed.
  void bindSimulator(const sim::Simulator* sim) { sim_ = sim; }

  /// Unmaps the device whose window starts at `base` (e.g. a sink shell
  /// removed when an instance is recycled). Returns false when no window
  /// starts there.
  bool detach(sim::Addr base) {
    for (auto it = devices_.begin(); it != devices_.end(); ++it) {
      if (it->base == base) {
        devices_.erase(it);
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] std::uint32_t read(sim::Addr addr) const {
    const Device& d = find(addr);
    checkShard(d);
    ++reads_;
    return d.read(addr - d.base);
  }

  void write(sim::Addr addr, std::uint32_t value) {
    const Device& d = find(addr);
    checkShard(d);
    ++writes_;
    d.write(addr - d.base, value);
  }

  [[nodiscard]] std::uint64_t readCount() const { return reads_; }
  [[nodiscard]] std::uint64_t writeCount() const { return writes_; }

 private:
  struct Device {
    std::string name;
    sim::Addr base;
    sim::Addr size;
    ReadFn read;
    WriteFn write;
    sim::ShardId shard = 0;
  };

  void checkShard(const Device& d) const {
    if (sim_ != nullptr && sim_->sharded()) {
      sim_->assertOnShard(d.shard, d.name.c_str());
    }
  }

  const Device& find(sim::Addr addr) const {
    for (const auto& d : devices_) {
      if (addr >= d.base && addr < d.base + d.size) return d;
    }
    throw std::out_of_range("PiBus: no device at address " + std::to_string(addr));
  }

  std::vector<Device> devices_;
  const sim::Simulator* sim_ = nullptr;
  mutable std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace eclipse::mem
