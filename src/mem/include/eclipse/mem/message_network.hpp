#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "eclipse/sim/fault.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::mem {

/// A 'putspace' synchronization message between two shells (Figure 7).
///
/// When a task commits space with PutSpace, its shell decrements the local
/// space field and sends this message to the shell holding the other access
/// point of the stream, which increments its space field on reception.
struct SyncMessage {
  std::uint32_t src_shell = 0;
  std::uint32_t dst_shell = 0;
  std::uint32_t dst_row = 0;    // stream-table row at the destination shell
  std::uint32_t bytes = 0;      // amount of space released
};

/// Dedicated low-latency network carrying putspace messages between shells.
///
/// Messages between a given (src, dst) pair are delivered in order; the
/// delivery latency models the token-ring / point-to-point sync wiring of
/// the hardware. Delivery invokes the destination shell's handler.
///
/// Sharding: this network is the only cross-shard transport. Each shell id
/// carries a shard tag; send() routes a message whose destination lives on
/// another lane through the kernel's bounded inter-shard channels, and the
/// modeled delivery latency is exactly the conservative lookahead the
/// partitioner declares (fault delays only ever *add* latency, so the base
/// latency stays a safe lower bound).
///
/// Thread safety under split plans: send() runs on lane threads during the
/// same barrier window, so the traffic counters are relaxed atomics (sums
/// commute — totals stay deterministic for any interleaving). The handler
/// and shard maps are only mutated outside runs (attach/detach/setShellShard
/// happen from the control plane between runs); window execution reads them
/// concurrently, which is safe. Fault hooks serialize inside the injector.
class MessageNetwork {
 public:
  using Handler = std::function<void(const SyncMessage&)>;

  MessageNetwork(sim::Simulator& sim, sim::Cycle latency)
      : sim_(sim), latency_(latency) {}

  /// Registers the message handler for a shell id.
  void attach(std::uint32_t shell_id, Handler handler) {
    handlers_[shell_id] = std::move(handler);
  }

  /// Tags a shell endpoint with the shard that executes it. Delivery events
  /// for the shell are scheduled onto that lane. Default: shard 0.
  void setShellShard(std::uint32_t shell_id, sim::ShardId shard) {
    shards_[shell_id] = shard;
  }
  [[nodiscard]] sim::ShardId shardOf(std::uint32_t shell_id) const {
    auto it = shards_.find(shell_id);
    return it == shards_.end() ? 0 : it->second;
  }

  /// Withdraws a shell's handler (shell removal on instance recycle).
  /// Delivery events capture a pointer to the registered handler, so this
  /// is only sound while no message to `shell_id` is in flight — i.e.
  /// after the simulator has quiesced or its events were destroyed.
  void detach(std::uint32_t shell_id) { handlers_.erase(shell_id); }

  /// Sends a message; delivery happens `latency` cycles later.
  void send(const SyncMessage& msg) {
    auto it = handlers_.find(msg.dst_shell);
    if (it == handlers_.end()) {
      throw std::runtime_error("MessageNetwork: no handler attached for shell " +
                               std::to_string(msg.dst_shell));
    }
    messages_sent_.fetch_add(1, std::memory_order_relaxed);
    bytes_signalled_.fetch_add(msg.bytes, std::memory_order_relaxed);
    sim::Cycle latency = latency_;
    // Fault hooks: an armed injector may drop this putspace message (the
    // destination shell's space field silently diverges — the canonical
    // lost-synchronisation fault) or deliver it late. Null injector = the
    // pristine path above, bit-identical to a build without faults.
    if (sim::FaultInjector* inj = sim_.faults()) {
      if (inj->shouldDropPutspace(msg.src_shell, sim_.now())) {
        messages_dropped_.fetch_add(1, std::memory_order_relaxed);
        inj->logTrigger({sim::FaultKind::DropPutspace, sim_.now(), msg.src_shell,
                         0, msg.bytes});
        return;
      }
      if (sim::Cycle extra = inj->putspaceDelay(msg.src_shell, sim_.now())) {
        latency += extra;
        inj->logTrigger({sim::FaultKind::DelayPutspace, sim_.now(), msg.src_shell,
                         0, msg.bytes});
      }
    }
    // Captures a pointer plus the 16-byte message: small and trivially
    // copyable, so the delivery event is stored inline in the kernel —
    // no allocation per putspace message.
    Handler* handler = &it->second;
    if (sim_.sharded()) {
      const sim::ShardId dst_shard = shardOf(msg.dst_shell);
      if (dst_shard != sim_.currentShard()) {
        cross_messages_.fetch_add(1, std::memory_order_relaxed);
      }
      sim_.scheduleOnShard(dst_shard, latency, [handler, msg] { (*handler)(msg); });
      return;
    }
    sim_.schedule(latency, [handler, msg] { (*handler)(msg); });
  }

  [[nodiscard]] sim::Cycle latency() const { return latency_; }
  [[nodiscard]] std::uint64_t messagesSent() const {
    return messages_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t messagesDropped() const {
    return messages_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bytesSignalled() const {
    return bytes_signalled_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t crossShardMessages() const {
    return cross_messages_.load(std::memory_order_relaxed);
  }

  void resetStats() {
    messages_sent_.store(0, std::memory_order_relaxed);
    messages_dropped_.store(0, std::memory_order_relaxed);
    bytes_signalled_.store(0, std::memory_order_relaxed);
    cross_messages_.store(0, std::memory_order_relaxed);
  }

 private:
  sim::Simulator& sim_;
  sim::Cycle latency_;
  std::map<std::uint32_t, Handler> handlers_;
  std::map<std::uint32_t, sim::ShardId> shards_;
  std::atomic<std::uint64_t> messages_sent_{0};
  std::atomic<std::uint64_t> messages_dropped_{0};
  std::atomic<std::uint64_t> bytes_signalled_{0};
  std::atomic<std::uint64_t> cross_messages_{0};
};

}  // namespace eclipse::mem
