#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/sim_event.hpp"
#include "eclipse/sim/simulator.hpp"
#include "eclipse/sim/stats.hpp"

namespace eclipse::mem {

/// Statistics kept per bus and per client.
struct BusStats {
  std::uint64_t transactions = 0;
  std::uint64_t bytes = 0;
  sim::Cycle busy_cycles = 0;
};

/// Shared bus with FIFO (arrival-order) arbitration.
///
/// A transfer occupies the bus for `arbitration_latency + ceil(bytes/width)`
/// cycles; concurrent requesters queue. The width parameter corresponds to
/// the paper's 128-bit (16-byte) data path; the arbitration latency models
/// the grant handshake.
///
/// Sharding: FIFO grant order is a zero-lookahead coupling — every client
/// of this bus must execute on the bus's home shard, which is why the
/// partitioner fuses bus-sharing shells onto one lane. transfer() enforces
/// the affinity at run time when the simulation is sharded.
class Bus {
 public:
  Bus(sim::Simulator& sim, std::string name, std::uint32_t width_bytes,
      sim::Cycle arbitration_latency)
      : sim_(sim),
        name_(std::move(name)),
        width_bytes_(width_bytes == 0 ? 1 : width_bytes),
        arb_latency_(arbitration_latency),
        grant_(sim, 1) {}

  Bus(const Bus&) = delete;
  Bus& operator=(const Bus&) = delete;

  /// Occupies the bus for the duration of a `bytes`-sized burst.
  /// `client` identifies the requester for per-client accounting.
  sim::Task<void> transfer(std::size_t bytes, int client) {
    if (sim_.sharded()) sim_.assertOnShard(home_shard_, name_.c_str());
    co_await grant_.acquire();
    sim::SemaphoreGuard guard(grant_);
    const sim::Cycle data_cycles = dataCycles(bytes);
    const sim::Cycle total = arb_latency_ + data_cycles;
    co_await sim_.delay(total);
    total_.transactions += 1;
    total_.bytes += bytes;
    total_.busy_cycles += total;
    auto& cs = per_client_[client];
    cs.transactions += 1;
    cs.bytes += bytes;
    cs.busy_cycles += total;
  }

  /// Cycles a burst of `bytes` occupies the data path (excl. arbitration).
  [[nodiscard]] sim::Cycle dataCycles(std::size_t bytes) const {
    return (bytes + width_bytes_ - 1) / width_bytes_;
  }

  /// Shard owning this bus's arbitration state. All clients must execute
  /// there; set by the app-layer partitioner.
  void setHomeShard(sim::ShardId shard) { home_shard_ = shard; }
  [[nodiscard]] sim::ShardId homeShard() const { return home_shard_; }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t widthBytes() const { return width_bytes_; }
  [[nodiscard]] sim::Cycle arbitrationLatency() const { return arb_latency_; }
  [[nodiscard]] const BusStats& stats() const { return total_; }
  [[nodiscard]] const std::map<int, BusStats>& perClientStats() const { return per_client_; }

  /// Bus occupancy as a fraction of `elapsed` cycles.
  [[nodiscard]] double utilization(sim::Cycle elapsed) const {
    if (elapsed == 0) return 0.0;
    return static_cast<double>(total_.busy_cycles) / static_cast<double>(elapsed);
  }

  void resetStats() {
    total_ = BusStats{};
    per_client_.clear();
  }

 private:
  sim::Simulator& sim_;
  std::string name_;
  std::uint32_t width_bytes_;
  sim::Cycle arb_latency_;
  sim::Semaphore grant_;
  sim::ShardId home_shard_ = 0;
  BusStats total_;
  std::map<int, BusStats> per_client_;
};

}  // namespace eclipse::mem
