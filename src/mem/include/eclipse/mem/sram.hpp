#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "eclipse/mem/bus.hpp"
#include "eclipse/mem/storage.hpp"
#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/simulator.hpp"

namespace eclipse::mem {

/// Parameters for the central on-chip stream-buffer memory.
///
/// The paper's first instance uses a 32 kB SRAM with a 128-bit data path and
/// separate read and write buses (SRAM at 300 MHz serving two 150 MHz
/// buses), so reads and writes do not contend with each other.
struct SramParams {
  std::size_t size_bytes = 32 * 1024;
  std::uint32_t bus_width_bytes = 16;  // 128-bit data path
  sim::Cycle bus_arbitration_latency = 1;
  sim::Cycle access_latency = 1;  // SRAM array access after grant
};

/// Central on-chip SRAM holding the cyclic stream FIFOs.
///
/// Timed access goes through the read or write bus (FIFO arbitration among
/// shells); functional access for configuration goes via storage().
class SharedSram {
 public:
  SharedSram(sim::Simulator& sim, const SramParams& params)
      : sim_(sim),
        params_(params),
        storage_(params.size_bytes),
        read_bus_(sim, "sram.read", params.bus_width_bytes, params.bus_arbitration_latency),
        write_bus_(sim, "sram.write", params.bus_width_bytes, params.bus_arbitration_latency) {}

  /// Timed read of `out.size()` bytes at `addr` on behalf of `client`.
  sim::Task<void> read(sim::Addr addr, std::span<std::uint8_t> out, int client) {
    co_await read_bus_.transfer(out.size(), client);
    co_await sim_.delay(params_.access_latency);
    storage_.read(addr, out);
  }

  /// Timed write of `in.size()` bytes at `addr` on behalf of `client`.
  sim::Task<void> write(sim::Addr addr, std::span<const std::uint8_t> in, int client) {
    co_await write_bus_.transfer(in.size(), client);
    co_await sim_.delay(params_.access_latency);
    storage_.write(addr, in);
  }

  /// Timing-only accesses: occupy the bus and pay the access latency for a
  /// `bytes`-sized burst without moving data. Cycle-identical to read/write
  /// of the same size — used where the model splits function from timing
  /// (the zero-copy transport path: data moves through window views while
  /// the stream caches replay the original fill/flush traffic).
  sim::Task<void> touchRead(std::size_t bytes, int client) {
    co_await read_bus_.transfer(bytes, client);
    co_await sim_.delay(params_.access_latency);
  }
  sim::Task<void> touchWrite(std::size_t bytes, int client) {
    co_await write_bus_.transfer(bytes, client);
    co_await sim_.delay(params_.access_latency);
  }

  /// Homes the SRAM (storage + both buses) on one shard. Every shell that
  /// touches this memory must execute there — the partitioner's fusion rule.
  void setHomeShard(sim::ShardId shard) {
    read_bus_.setHomeShard(shard);
    write_bus_.setHomeShard(shard);
  }
  [[nodiscard]] sim::ShardId homeShard() const { return read_bus_.homeShard(); }

  [[nodiscard]] Storage& storage() { return storage_; }
  [[nodiscard]] const Storage& storage() const { return storage_; }
  [[nodiscard]] Bus& readBus() { return read_bus_; }
  [[nodiscard]] Bus& writeBus() { return write_bus_; }
  [[nodiscard]] const SramParams& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  SramParams params_;
  Storage storage_;
  Bus read_bus_;
  Bus write_bus_;
};

/// Parameters for off-chip (system) memory holding reference frames and
/// compressed input bit-streams. Accessed over the system bus by the MC/ME
/// and VLD coprocessors (paper, Section 6).
struct DramParams {
  std::size_t size_bytes = 16 * 1024 * 1024;
  std::uint32_t bus_width_bytes = 8;  // 64-bit system bus
  sim::Cycle bus_arbitration_latency = 2;
  sim::Cycle access_latency = 60;  // off-chip random-access penalty (reads stall; writes post)
};

/// Off-chip memory model: single shared system bus, long access latency.
class OffChipMemory {
 public:
  OffChipMemory(sim::Simulator& sim, const DramParams& params)
      : sim_(sim),
        params_(params),
        storage_(params.size_bytes),
        bus_(sim, "system.bus", params.bus_width_bytes, params.bus_arbitration_latency) {}

  sim::Task<void> read(sim::Addr addr, std::span<std::uint8_t> out, int client) {
    co_await bus_.transfer(out.size(), client);
    co_await sim_.delay(params_.access_latency);
    storage_.read(addr, out);
  }

  sim::Task<void> write(sim::Addr addr, std::span<const std::uint8_t> in, int client) {
    co_await bus_.transfer(in.size(), client);
    co_await sim_.delay(params_.access_latency);
    storage_.write(addr, in);
  }

  /// Timing-only accesses: occupy the bus and pay the access latency for a
  /// `bytes`-sized burst without moving data. Used where the model splits
  /// function from timing (e.g. 2D region gathers in the MC coprocessor).
  sim::Task<void> touchRead(std::size_t bytes, int client) {
    co_await bus_.transfer(bytes, client);
    co_await sim_.delay(params_.access_latency);
  }
  sim::Task<void> touchWrite(std::size_t bytes, int client) {
    co_await bus_.transfer(bytes, client);
    co_await sim_.delay(params_.access_latency);
  }

  /// Homes the off-chip memory (storage + system bus) on one shard; see
  /// SharedSram::setHomeShard.
  void setHomeShard(sim::ShardId shard) { bus_.setHomeShard(shard); }
  [[nodiscard]] sim::ShardId homeShard() const { return bus_.homeShard(); }

  [[nodiscard]] Storage& storage() { return storage_; }
  [[nodiscard]] const Storage& storage() const { return storage_; }
  [[nodiscard]] Bus& bus() { return bus_; }
  [[nodiscard]] const DramParams& params() const { return params_; }

 private:
  sim::Simulator& sim_;
  DramParams params_;
  Storage storage_;
  Bus bus_;
};

}  // namespace eclipse::mem
