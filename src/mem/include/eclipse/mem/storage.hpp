#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "eclipse/sim/types.hpp"

namespace eclipse::mem {

/// Plain bounds-checked byte storage backing a simulated memory.
///
/// Storage carries no timing; timing comes from the bus / memory front-ends
/// that mediate access to it. Functional code (configuration, golden-model
/// checks) may peek/poke directly.
class Storage {
 public:
  explicit Storage(std::size_t size_bytes) : bytes_(size_bytes, 0) {}

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }

  void read(sim::Addr addr, std::span<std::uint8_t> out) const {
    checkRange(addr, out.size());
    std::copy_n(bytes_.begin() + static_cast<std::ptrdiff_t>(addr), out.size(), out.begin());
  }

  void write(sim::Addr addr, std::span<const std::uint8_t> in) {
    checkRange(addr, in.size());
    std::copy_n(in.begin(), in.size(), bytes_.begin() + static_cast<std::ptrdiff_t>(addr));
  }

  [[nodiscard]] std::uint8_t peek(sim::Addr addr) const {
    checkRange(addr, 1);
    return bytes_[addr];
  }

  void poke(sim::Addr addr, std::uint8_t value) {
    checkRange(addr, 1);
    bytes_[addr] = value;
  }

  void fill(std::uint8_t value) { std::fill(bytes_.begin(), bytes_.end(), value); }

  /// Raw view for zero-copy functional access (tests, trace dumps).
  [[nodiscard]] std::span<const std::uint8_t> view() const { return bytes_; }
  [[nodiscard]] std::span<std::uint8_t> view() { return bytes_; }

 private:
  void checkRange(sim::Addr addr, std::size_t n) const {
    if (addr + n > bytes_.size() || addr + n < addr) {
      throw std::out_of_range("Storage: access [" + std::to_string(addr) + ", " +
                              std::to_string(addr + n) + ") outside size " +
                              std::to_string(bytes_.size()));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

}  // namespace eclipse::mem
