#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eclipse/farm/farm.hpp"
#include "eclipse/serve/protocol.hpp"
#include "eclipse/serve/tenant.hpp"

namespace eclipse::serve {

/// Serve-level execution facts delivered alongside the farm result.
struct DispatchInfo {
  double queue_ms = 0.0;  ///< serve admission -> farm dispatch
  double serve_ms = 0.0;  ///< serve admission -> terminal result
  bool promoted = false;  ///< deadline slack promoted the farm lane
};

struct DispatcherOptions {
  /// Promote a pending job one farm lane when its remaining wall-clock
  /// slack (deadline_ms - time waited) drops below this. Mirrors the retry
  /// path's demotion: urgency moves jobs *up*, flakiness moves them down.
  double promote_slack_ms = 100.0;
  /// Template for tenants that first appear on a Hello (auto-registration);
  /// its `name` field is ignored.
  TenantConfig default_tenant{};
  /// When false, jobs from unregistered tenants are rejected instead of
  /// auto-registering them under default_tenant.
  bool auto_register = true;
  /// Dispatch-thread wake period: bounds how stale token refills and
  /// promotion scans can get when no admission/result activity wakes it.
  double poll_ms = 2.0;
};

/// Multi-tenant QoS dispatcher: per-tenant FIFO queues in front of the
/// farm, released by deficit-round-robin (weights), paced by token
/// buckets (rate/burst), bounded by admission quotas (max in-flight in
/// the farm) and pending bounds, with deadline-aware lane promotion.
///
/// The farm below stays tenant-blind: all fairness lives here, above the
/// three priority lanes, and a job the dispatcher releases is an ordinary
/// farm job — the determinism contract is untouched (DESIGN §15).
///
/// Threading: admit() is called from connection reader threads; the
/// dispatch thread releases jobs via Farm::submitCallback; result
/// callbacks arrive on worker/supervisor threads, update tenant
/// accounting, then invoke the caller's callback *outside* the dispatcher
/// lock (it may take a connection write lock, never farm or dispatcher
/// locks — no cycle).
class Dispatcher {
 public:
  using ResultFn = std::function<void(const farm::JobResult&, const DispatchInfo&)>;

  enum class Verdict { Accepted, RateLimited, QueueFull, Draining, UnknownTenant };

  Dispatcher(farm::Farm& farm, DispatcherOptions options);
  /// Fails every still-pending job (synthetic Error result) and joins the
  /// dispatch thread. Callers that want zero loss drain first.
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  /// Registers (or reconfigures, preserving counters and queued jobs) a
  /// tenant. Part of config reload; safe while serving.
  void configureTenant(const TenantConfig& cfg);

  /// Admission: enqueue `job` for `tenant`. On Accepted, `on_result` fires
  /// exactly once with the terminal result, on a farm thread — it must not
  /// block. deadline_ms = 0 means no wall deadline (no promotion).
  Verdict admit(const std::string& tenant, farm::Job job, double deadline_ms,
                ResultFn on_result);

  /// Rolling drain: stop admitting (admit() returns Draining), keep
  /// dispatching and delivering everything already accepted.
  void beginDrain();
  [[nodiscard]] bool draining() const;

  /// Blocks until every accepted job has delivered its result. Only
  /// meaningful after beginDrain() (admission would keep it alive).
  void awaitDrained();

  /// Per-tenant snapshots (stable name order) for /metrics and gates.
  [[nodiscard]] std::vector<TenantStats> tenantStats() const;
  /// Accepted jobs not yet terminal (pending + in farm), all tenants.
  [[nodiscard]] std::size_t outstanding() const;

 private:
  struct Pending {
    farm::Job job;
    double deadline_ms = 0.0;
    std::chrono::steady_clock::time_point admitted{};
    bool promoted = false;
    ResultFn on_result;
  };

  struct Tenant {
    TenantConfig config;
    TokenBucket bucket;
    std::deque<Pending> pending;
    double deficit = 0.0;
    // cumulative counters + quantiles (snapshotted into TenantStats)
    std::uint64_t admitted = 0, shed_rate = 0, shed_queue = 0, dispatched = 0;
    std::uint64_t completed = 0, failed = 0, promoted = 0;
    int inflight = 0;
    Histogram latency, queue_age;
  };

  void threadMain();
  /// One DRR pass over all tenants; returns true when anything dispatched.
  /// Called and returns with `lk` held.
  bool dispatchRound(std::unique_lock<std::mutex>& lk);
  /// Promotes pending jobs whose slack fell below the threshold.
  void promotionScan(std::chrono::steady_clock::time_point now);
  /// Releases the front job of `t` into the farm. Returns false when the
  /// farm queue is full (job left at the front for the next round).
  bool releaseFront(Tenant& t);
  void failPending(Tenant& t, Pending&& p, const char* why);

  farm::Farm& farm_;
  const DispatcherOptions opts_;

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< wakes the dispatch thread
  std::condition_variable drained_;   ///< signals outstanding_ == 0
  std::map<std::string, Tenant> tenants_;  ///< stable iteration order
  std::size_t outstanding_ = 0;  ///< accepted, not yet terminal
  bool draining_ = false;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace eclipse::serve
