#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "eclipse/farm/job.hpp"

namespace eclipse::serve {

/// eclipse_serve wire protocol (DESIGN §15).
///
/// A client that opens with the 4-byte magic "ECL1" speaks the binary
/// protocol: a stream of frames, each
///
///     [u32 LE payload length][u8 frame type][payload bytes]
///
/// in both directions (the length counts the payload only, not the type
/// byte). Anything else on the first four bytes selects the line-oriented
/// text protocol (nc-friendly; see Server). All integers are little-endian;
/// strings are length-prefixed (u32) byte runs; doubles travel as the
/// bit-cast u64.
inline constexpr char kMagic[4] = {'E', 'C', 'L', '1'};

/// Payloads are small (specs, metrics text, result blobs); anything larger
/// than this is a corrupt or hostile frame and the connection is dropped.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 20;

enum class FrameType : std::uint8_t {
  // client -> server
  Hello = 1,    ///< str tenant
  Submit = 2,   ///< u64 req_id, str spec (jobspec grammar)
  Metrics = 3,  ///< (empty)
  Ping = 4,     ///< (empty)
  Quit = 5,     ///< (empty)
  // server -> client
  HelloOk = 32,      ///< str banner
  Accepted = 33,     ///< u64 req_id
  Rejected = 34,     ///< u64 req_id, u8 RejectReason, str detail
  Result = 35,       ///< u64 req_id, WireResult blob
  MetricsText = 36,  ///< str text (the /metrics exposition)
  Pong = 37,         ///< (empty)
  Bye = 38,          ///< (empty)
  Error = 39,        ///< str message (protocol violation; connection closes)
};

enum class RejectReason : std::uint8_t {
  BadSpec = 1,
  RateLimited = 2,   ///< tenant token bucket empty under shed policy
  QueueFull = 3,     ///< tenant pending bound hit
  Draining = 4,      ///< server stopped admitting (rolling drain)
  UnknownTenant = 5,
  TooManyConnections = 6,
  Internal = 7,
};

[[nodiscard]] constexpr const char* rejectReasonName(RejectReason r) {
  switch (r) {
    case RejectReason::BadSpec: return "bad-spec";
    case RejectReason::RateLimited: return "rate-limited";
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::Draining: return "draining";
    case RejectReason::UnknownTenant: return "unknown-tenant";
    case RejectReason::TooManyConnections: return "too-many-connections";
    case RejectReason::Internal: return "internal";
  }
  return "?";
}

/// Malformed frame / short read past the framing layer. The connection
/// that raised it is unrecoverable and gets closed.
struct ProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian encoder for frame payloads.
class ByteWriter {
 public:
  void putU8(std::uint8_t v) { buf_.push_back(v); }
  void putU32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void putU64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void putF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    putU64(bits);
  }
  void putStr(const std::string& s) {
    putU32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder; throws ProtocolError on underrun.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : p_(data), end_(data + size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& v) : ByteReader(v.data(), v.size()) {}

  [[nodiscard]] std::uint8_t getU8() {
    need(1);
    return *p_++;
  }
  [[nodiscard]] std::uint32_t getU32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p_++) << (8 * i);
    return v;
  }
  [[nodiscard]] std::uint64_t getU64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p_++) << (8 * i);
    return v;
  }
  [[nodiscard]] double getF64() {
    const std::uint64_t bits = getU64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  [[nodiscard]] std::string getStr() {
    const std::uint32_t n = getU32();
    need(n);
    std::string s(reinterpret_cast<const char*>(p_), n);
    p_ += n;
    return s;
  }
  [[nodiscard]] bool empty() const { return p_ == end_; }

 private:
  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end_ - p_) < n) throw ProtocolError("frame underrun");
  }
  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

/// One framed message, decoded.
struct Frame {
  FrameType type{};
  std::vector<std::uint8_t> payload;
};

/// The result as it travels back to the client: the farm's JobResult
/// (minus the per-attempt log) plus the serve-level execution facts the
/// dispatcher knows (queue time, promotion, end-to-end serve latency).
struct WireResult {
  std::uint64_t req_id = 0;  ///< client-chosen submit correlation id
  std::string name;
  std::string tenant;
  farm::JobStatus status = farm::JobStatus::Error;
  farm::JobError cause = farm::JobError::None;
  // simulated (determinism contract)
  std::uint64_t sim_cycles = 0;
  std::uint64_t sim_events = 0;
  std::uint64_t macroblocks = 0;
  bool bit_exact = false;
  double psnr_db = 0.0;
  std::uint64_t faults_latched = 0;
  std::uint64_t stalls_latched = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t mode_switches = 0;
  std::string quiescence;
  // host-side
  int attempts = 1;
  std::uint32_t lanes = 1;
  double wall_ms = 0.0;
  double latency_ms = 0.0;  ///< farm submission -> terminal result
  double queue_ms = 0.0;    ///< serve admission -> farm dispatch
  double serve_ms = 0.0;    ///< serve admission -> result delivered
  bool promoted = false;    ///< deadline slack promoted the farm lane
  std::string error;
};

/// Builds a WireResult from the farm's terminal result + dispatcher facts.
[[nodiscard]] WireResult makeWireResult(std::uint64_t req_id, const farm::JobResult& r,
                                        double queue_ms, double serve_ms, bool promoted);

/// Result blob codec (the Result frame payload after the req_id).
void encodeResult(ByteWriter& w, const WireResult& r);
[[nodiscard]] WireResult decodeResult(ByteReader& r);

/// Renders a WireResult as the text-mode RESULT line's key=value tail
/// (also what serve_client prints per result).
[[nodiscard]] std::string formatResultLine(const WireResult& r);

/// Blocking socket I/O for frames. sendFrame returns false on a broken
/// connection (EPIPE etc.; never raises SIGPIPE). recvFrame returns false
/// on clean EOF at a frame boundary and throws ProtocolError on a torn
/// frame or an oversized payload.
bool sendFrame(int fd, FrameType type, const std::vector<std::uint8_t>& payload);
bool recvFrame(int fd, Frame& out);

/// Exact-count recv helper: false on EOF before the first byte, throws
/// ProtocolError on EOF mid-read.
bool recvExact(int fd, void* buf, std::size_t n);

}  // namespace eclipse::serve
