#pragma once

#include <string>
#include <vector>

#include "eclipse/farm/farm.hpp"
#include "eclipse/serve/tenant.hpp"

namespace eclipse::serve {

/// Renders the /metrics exposition: Prometheus-style text combining the
/// farm's cumulative counters, the live per-lane gauges, and per-tenant
/// serve counters with latency / queue-age quantiles and cumulative
/// histogram buckets. Pure formatting — callers pass consistent snapshots.
[[nodiscard]] std::string renderMetricsText(const farm::FarmMetrics& farm,
                                            const std::vector<TenantStats>& tenants);

}  // namespace eclipse::serve
