#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>

namespace eclipse::serve {

/// Fixed-bucket latency histogram (milliseconds, log-spaced bounds).
///
/// Cheap enough to update on every result under the dispatcher lock, and
/// exportable both as quantile estimates (upper bucket bound at the target
/// rank — the usual Prometheus-style approximation) and as cumulative
/// bucket counts for the /metrics endpoint. Not internally synchronised:
/// the owner (TenantState) serialises access.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 16;

  /// Upper bounds in ms; the last bucket is +inf (represented by max()).
  [[nodiscard]] static constexpr std::array<double, kBuckets> bounds() {
    return {0.5,   1.0,   2.0,    5.0,    10.0,   20.0,    50.0,    100.0,
            200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 30000.0, 1e300};
  }

  void record(double ms) {
    const auto b = bounds();
    std::size_t i = 0;
    while (i + 1 < kBuckets && ms > b[i]) ++i;
    ++counts_[i];
    ++count_;
    sum_ms_ += ms;
    max_ms_ = std::max(max_ms_, ms);
  }

  /// Quantile estimate: the upper bound of the bucket holding the q-th
  /// ranked sample (q in [0,1]). The open-ended top bucket reports the
  /// observed max instead of +inf. 0 when empty.
  [[nodiscard]] double percentile(double q) const {
    if (count_ == 0) return 0.0;
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += counts_[i];
      if (cum >= rank) return i + 1 == kBuckets ? max_ms_ : bounds()[i];
    }
    return max_ms_;
  }

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sumMs() const { return sum_ms_; }
  [[nodiscard]] double maxMs() const { return max_ms_; }
  [[nodiscard]] std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t count_ = 0;
  double sum_ms_ = 0.0;
  double max_ms_ = 0.0;
};

}  // namespace eclipse::serve
