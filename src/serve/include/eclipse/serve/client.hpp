#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "eclipse/serve/protocol.hpp"

namespace eclipse::serve {

/// Blocking binary-protocol client (the canonical consumer; the text mode
/// is for humans with nc). Single-threaded: results stream back on the
/// same socket, so every receive path buffers Result frames that arrive
/// while it waits for something else — submit() can be called open-loop
/// and await()/awaitAll() collect results in any order.
///
/// Throws ProtocolError on a torn stream and std::runtime_error on
/// connect/handshake failure. Not thread-safe.
class Client {
 public:
  Client() = default;
  ~Client() { close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects, sends the "ECL1" magic and a Hello for `tenant`.
  void connect(const std::string& host, std::uint16_t port, const std::string& tenant);

  struct Submitted {
    std::uint64_t req_id = 0;
    bool accepted = false;
    RejectReason reason = RejectReason::Internal;  ///< when !accepted
    std::string detail;
  };

  /// Submits a jobspec (grammar: serve/jobspec.hpp) and waits for the
  /// Accepted/Rejected reply. req_ids are assigned 1, 2, ...
  Submitted submit(const std::string& spec);

  /// Blocks until the result for `req_id` arrives (earlier-arriving other
  /// results are buffered for their own await calls).
  WireResult await(std::uint64_t req_id);

  /// Collects the results of every accepted-but-unawaited submission.
  std::vector<WireResult> awaitAll();

  /// Fetches the /metrics exposition text.
  std::string metricsText();

  void ping();

  /// Polite goodbye (Quit/Bye) + socket close. Safe to call twice.
  void close();

  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  /// Accepted submissions whose results have not been awaited yet.
  [[nodiscard]] std::size_t outstanding() const { return outstanding_.size(); }

 private:
  /// Reads frames until one of `want` arrives, buffering Result frames.
  Frame readUntil(std::initializer_list<FrameType> want);
  void bufferResult(const Frame& f);

  int fd_ = -1;
  std::uint64_t next_req_id_ = 1;
  std::map<std::uint64_t, WireResult> results_;  ///< arrived, not yet awaited
  std::map<std::uint64_t, bool> outstanding_;    ///< accepted, result not seen
};

}  // namespace eclipse::serve
