#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eclipse/farm/farm.hpp"
#include "eclipse/serve/dispatcher.hpp"
#include "eclipse/serve/tenant.hpp"

namespace eclipse::serve {

struct ServeOptions {
  farm::FarmOptions farm{};
  /// Pre-registered tenants; others appear via auto-registration under
  /// `default_tenant` (or are rejected when auto_register is off).
  std::vector<TenantConfig> tenants;
  TenantConfig default_tenant{};
  bool auto_register = true;
  double promote_slack_ms = 100.0;
  double poll_ms = 2.0;

  std::uint16_t port = 0;  ///< 0 = ephemeral (read back via Server::port())
  /// Kernel accept backlog; beyond it the kernel refuses connections —
  /// the explicit bound on un-accepted connection pressure.
  int accept_backlog = 16;
  /// Accepted-connection bound: beyond it a fresh connection is told
  /// TooManyConnections and closed.
  int max_connections = 64;
};

/// Config-reload payload: the subset of ServeOptions that may change live.
struct ReloadConfig {
  std::vector<TenantConfig> tenants;  ///< upserted into the dispatcher
  int workers = 0;                    ///< > 0: resize the farm worker pool
};

/// The serving tier: a TCP front-end (binary frames or a line-oriented
/// text mode — see protocol.hpp) over Dispatcher over Farm. One reader
/// thread per connection; results stream back asynchronously from farm
/// threads under a per-connection write lock (DESIGN §15).
class Server {
 public:
  explicit Server(ServeOptions options);
  /// Equivalent to shutdown(): drains accepted work, then tears down.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Starts listening (loopback) and accepting. Throws std::runtime_error
  /// when the socket cannot be bound.
  void start();

  /// The bound port (after start(); useful with port = 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Rolling drain, phase 1: stop accepting connections and admitting
  /// jobs; everything already accepted keeps running. Idempotent.
  void beginDrain();

  /// Rolling drain, phase 2: wait until every accepted job has delivered
  /// its result to its connection, then close connections and join all
  /// threads. Zero accepted-job loss by construction.
  void shutdown();

  /// Live reconfiguration without dropping accepted jobs: upserts tenant
  /// QoS configs and resizes the farm worker pool.
  void reload(const ReloadConfig& cfg);

  /// The /metrics exposition (same text the METRICS request returns).
  [[nodiscard]] std::string metricsText() const;

  [[nodiscard]] farm::Farm& farm() { return farm_; }
  [[nodiscard]] Dispatcher& dispatcher() { return *dispatcher_; }
  [[nodiscard]] int connectionCount() const;
  /// Jobs accepted over connections whose results were never written
  /// (client gone before the result). 0 after a clean drain of wellbehaved
  /// clients — the zero-loss gate asserts exactly that.
  [[nodiscard]] std::uint64_t resultsDropped() const {
    return results_dropped_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn;

  void acceptLoop();
  void connLoop(std::shared_ptr<Conn> conn);
  void serveBinary(const std::shared_ptr<Conn>& conn);
  void serveText(const std::shared_ptr<Conn>& conn, std::string carry);
  /// Parses + admits one submission; sends Accepted/Rejected and, later,
  /// the Result (binary frame or text line depending on the conn mode).
  void handleSubmit(const std::shared_ptr<Conn>& conn, std::uint64_t req_id,
                    const std::string& spec);

  ServeOptions opts_;
  farm::Farm farm_;  // declared before dispatcher_: destroyed after it
  std::unique_ptr<Dispatcher> dispatcher_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> accepting_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> results_dropped_{0};
  std::thread accept_thread_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace eclipse::serve
