#pragma once

#include <string>

#include "eclipse/farm/job.hpp"

namespace eclipse::serve {

/// A parsed job specification: the farm job plus the serve-level QoS
/// fields that never reach the farm (the dispatcher consumes them).
struct ParsedSpec {
  farm::Job job;
  /// Wall-clock deadline for the whole serve path (admission to result),
  /// in ms. 0 = none. Drives deadline-aware lane promotion: when the
  /// remaining slack drops below the dispatcher's promotion threshold the
  /// job is bumped one farm lane up (see DESIGN §15).
  double deadline_ms = 0.0;
};

/// Parses `<name> [key=value ...]` into a job — the same grammar served
/// jobs and their in-process oracles go through, so the bit-identity gate
/// compares two executions of the *same* Job value by construction.
///
/// Keys: the farm_driver job-line set (kind, width, height, frames, seed,
/// qscale, gop=N[,M], detail, motion, noise, priority, max_cycles, verify,
/// shards, retries, backoff_ms, deadline, supervise_ms, config:KEY=V) plus
/// the serve extensions:
///   deadline_ms=X          wall deadline for lane promotion (serve-level)
///   storm=hang|corrupt     deterministic fault storm (chaos soak; mirrors
///   storm_seed=N           the farm soak's seeded spec derivation)
///   watchdog=N             per-shell watchdog timeout in cycles
///   hang_ms=X hang_attempts=N   host-side worker-hang injection
///
/// Returns false with `err` set on a malformed spec; `out` is unspecified
/// then. An empty/comment spec is an error here (unlike a job *file* line,
/// a submitted spec must name a job).
bool parseJobSpec(const std::string& spec, ParsedSpec& out, std::string& err);

}  // namespace eclipse::serve
