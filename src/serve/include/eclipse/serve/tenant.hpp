#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>

#include "eclipse/serve/histogram.hpp"

namespace eclipse::serve {

/// What to do when a tenant exceeds its rate: Shed rejects at admission
/// (RateLimited), Queue accepts and lets the job wait in the tenant's
/// pending queue for tokens (only the pending bound rejects then).
enum class OverloadPolicy { Shed, Queue };

[[nodiscard]] constexpr const char* overloadPolicyName(OverloadPolicy p) {
  return p == OverloadPolicy::Shed ? "shed" : "queue";
}

/// Per-tenant QoS contract. All limits are serve-level: the farm below
/// never sees tenants, only the jobs the dispatcher chose to release.
struct TenantConfig {
  std::string name;
  /// Token-bucket rate in jobs/second (0 = unlimited). Tokens are spent at
  /// dispatch, so a Queue-policy tenant is *paced*, not rejected.
  double rate = 0.0;
  double burst = 8.0;  ///< bucket capacity (min 1 when rate-limited)
  /// Admission quota: jobs this tenant may have in flight in the farm at
  /// once. Bounds the share of workers one tenant can pin down.
  int max_inflight = 4;
  /// Pending bound: jobs waiting in the tenant's serve-side queue. Beyond
  /// it admission rejects with QueueFull whatever the policy.
  std::size_t max_pending = 64;
  /// Deficit-round-robin weight: quantum added per dispatch round. Twice
  /// the weight, twice the backlog drain rate under contention.
  double weight = 1.0;
  OverloadPolicy policy = OverloadPolicy::Shed;
};

/// Classic token bucket; the caller provides the clock (the dispatcher
/// refills all buckets from one now() per round).
struct TokenBucket {
  double tokens = 0.0;
  std::chrono::steady_clock::time_point last{};

  void refill(const TenantConfig& cfg, std::chrono::steady_clock::time_point now) {
    if (cfg.rate <= 0.0) return;
    if (last.time_since_epoch().count() == 0) {
      last = now;
      tokens = std::max(1.0, cfg.burst);  // start full: a burst is allowed up front
      return;
    }
    const double dt = std::chrono::duration<double>(now - last).count();
    last = now;
    tokens = std::min(std::max(1.0, cfg.burst), tokens + cfg.rate * dt);
  }

  /// True (and one token consumed) when the tenant may dispatch now.
  [[nodiscard]] bool tryTake(const TenantConfig& cfg) {
    if (cfg.rate <= 0.0) return true;  // unlimited
    if (tokens < 1.0) return false;
    tokens -= 1.0;
    return true;
  }

  void refund(const TenantConfig& cfg) {
    if (cfg.rate > 0.0) tokens += 1.0;
  }
};

/// Snapshot of one tenant's counters + quantiles (for /metrics and the
/// bench gates). Counters are cumulative since registration.
struct TenantStats {
  TenantConfig config;
  std::uint64_t admitted = 0;
  std::uint64_t shed_rate = 0;    ///< rejected: bucket empty under Shed
  std::uint64_t shed_queue = 0;   ///< rejected: pending bound hit
  std::uint64_t dispatched = 0;   ///< released into the farm
  std::uint64_t completed = 0;    ///< terminal results, status Completed
  std::uint64_t failed = 0;       ///< terminal results, any other status
  std::uint64_t promoted = 0;     ///< deadline-slack lane promotions
  std::size_t pending = 0;        ///< gauge: waiting in the tenant queue
  int inflight = 0;               ///< gauge: inside the farm now
  Histogram latency;    ///< serve latency (admission -> result), ms
  Histogram queue_age;  ///< admission -> dispatch, ms

  [[nodiscard]] std::uint64_t shed() const { return shed_rate + shed_queue; }
};

/// Parses a tenant spec string: `name[:key=value,...]` with keys rate,
/// burst, quota (max_inflight), pending (max_pending), weight, policy
/// (shed|queue). Used by the daemon's --tenant flag and config file.
/// Returns false with `err` set on a malformed spec.
bool parseTenantSpec(const std::string& spec, TenantConfig& out, std::string& err);

}  // namespace eclipse::serve
