#include "eclipse/serve/tenant.hpp"

#include <sstream>

namespace eclipse::serve {

bool parseTenantSpec(const std::string& spec, TenantConfig& out, std::string& err) {
  out = TenantConfig{};
  const auto colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (out.name.empty()) {
    err = "empty tenant name";
    return false;
  }
  if (colon == std::string::npos) return true;

  std::istringstream is(spec.substr(colon + 1));
  std::string field;
  while (std::getline(is, field, ',')) {
    if (field.empty()) continue;
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
      err = "tenant field without '=': " + field;
      return false;
    }
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    try {
      if (key == "rate") {
        out.rate = std::stod(val);
      } else if (key == "burst") {
        out.burst = std::stod(val);
      } else if (key == "quota") {
        out.max_inflight = std::stoi(val);
      } else if (key == "pending") {
        out.max_pending = static_cast<std::size_t>(std::stoul(val));
      } else if (key == "weight") {
        out.weight = std::stod(val);
      } else if (key == "policy") {
        if (val == "shed") {
          out.policy = OverloadPolicy::Shed;
        } else if (val == "queue") {
          out.policy = OverloadPolicy::Queue;
        } else {
          err = "unknown policy: " + val;
          return false;
        }
      } else {
        err = "unknown tenant field: " + key;
        return false;
      }
    } catch (const std::exception&) {
      err = "bad value for tenant " + key + ": " + val;
      return false;
    }
  }
  if (out.rate < 0.0 || out.weight <= 0.0 || out.max_inflight < 1) {
    err = "tenant limits out of range (rate >= 0, weight > 0, quota >= 1)";
    return false;
  }
  return true;
}

}  // namespace eclipse::serve
