#include "eclipse/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "eclipse/serve/jobspec.hpp"
#include "eclipse/serve/metrics_text.hpp"
#include "eclipse/serve/protocol.hpp"

namespace eclipse::serve {

/// One accepted connection. The reader thread owns the receive side; the
/// send side is shared between the reader (replies) and farm threads
/// (async results) under write_mu. The fd closes only when the reader is
/// done AND no accepted job still owes this connection a result — so a
/// drain flushes every result before teardown can close anything.
struct Server::Conn {
  int fd = -1;
  bool binary = false;
  std::string tenant = "default";

  std::mutex write_mu;
  bool write_dead = false;  ///< send failed; swallow further writes
  bool read_done = false;
  int outstanding = 0;  ///< accepted jobs whose result hasn't been written

  ~Conn() {
    if (fd >= 0) ::close(fd);
  }

  /// Sends raw bytes; false when the peer is gone (writes become no-ops).
  bool sendRaw(const void* data, std::size_t n) {
    std::lock_guard<std::mutex> lk(write_mu);
    return sendRawLocked(data, n);
  }
  bool sendRawLocked(const void* data, std::size_t n) {
    if (fd < 0 || write_dead) return false;
    const auto* p = static_cast<const std::uint8_t*>(data);
    std::size_t sent = 0;
    while (sent < n) {
      const ssize_t k = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
      if (k < 0) {
        if (errno == EINTR) continue;
        write_dead = true;
        ::shutdown(fd, SHUT_RDWR);  // wake the reader; the conn is over
        return false;
      }
      sent += static_cast<std::size_t>(k);
    }
    return true;
  }
  bool sendFrameLocked(FrameType type, const std::vector<std::uint8_t>& payload) {
    ByteWriter head;
    head.putU32(static_cast<std::uint32_t>(payload.size()));
    head.putU8(static_cast<std::uint8_t>(type));
    if (!sendRawLocked(head.bytes().data(), head.bytes().size())) return false;
    return payload.empty() || sendRawLocked(payload.data(), payload.size());
  }
  bool sendFrame(FrameType type, const std::vector<std::uint8_t>& payload) {
    std::lock_guard<std::mutex> lk(write_mu);
    return sendFrameLocked(type, payload);
  }
  bool sendLine(const std::string& line) {
    const std::string out = line + "\n";
    return sendRaw(out.data(), out.size());
  }

  void closeIfDoneLocked() {
    if (fd >= 0 && read_done && outstanding == 0) {
      ::close(fd);
      fd = -1;
    }
  }
  [[nodiscard]] bool live() {
    std::lock_guard<std::mutex> lk(write_mu);
    return fd >= 0;
  }
};

Server::Server(ServeOptions options) : opts_(std::move(options)), farm_(opts_.farm) {
  DispatcherOptions dopts;
  dopts.promote_slack_ms = opts_.promote_slack_ms;
  dopts.default_tenant = opts_.default_tenant;
  dopts.auto_register = opts_.auto_register;
  dopts.poll_ms = opts_.poll_ms;
  dispatcher_ = std::make_unique<Dispatcher>(farm_, dopts);
  for (const TenantConfig& t : opts_.tenants) dispatcher_->configureTenant(t);
}

Server::~Server() { shutdown(); }

void Server::start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw std::runtime_error("serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(opts_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind 127.0.0.1:" + std::to_string(opts_.port));
  }
  if (::listen(listen_fd_, opts_.accept_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: listen() failed");
  }
  socklen_t alen = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);

  accepting_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { acceptLoop(); });
}

void Server::beginDrain() {
  accepting_.store(false, std::memory_order_release);
  dispatcher_->beginDrain();
}

void Server::shutdown() {
  if (stopped_.exchange(true)) return;
  beginDrain();
  // Every accepted job delivers its result — written to its connection
  // under write_mu by the callback — before anything below closes a socket.
  dispatcher_->awaitDrained();

  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);  // wakes accept()
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    conns = conns_;
  }
  for (const auto& c : conns) {
    std::lock_guard<std::mutex> lk(c->write_mu);
    if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);  // readers see EOF and exit
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conns_mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
}

void Server::reload(const ReloadConfig& cfg) {
  for (const TenantConfig& t : cfg.tenants) dispatcher_->configureTenant(t);
  if (cfg.workers > 0) farm_.resizeWorkers(cfg.workers);
}

std::string Server::metricsText() const {
  return renderMetricsText(farm_.metrics(), dispatcher_->tenantStats());
}

int Server::connectionCount() const {
  std::lock_guard<std::mutex> lk(conns_mu_);
  int n = 0;
  for (const auto& c : conns_) {
    if (c->live()) ++n;
  }
  return n;
}

void Server::acceptLoop() {
  while (true) {
    const int cfd = ::accept(listen_fd_, nullptr, nullptr);
    if (cfd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener shut down
    }
    if (!accepting_.load(std::memory_order_acquire)) {
      ::close(cfd);  // draining: refuse at the door
      continue;
    }
    const int one = 1;
    ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

    auto conn = std::make_shared<Conn>();
    conn->fd = cfd;
    {
      std::lock_guard<std::mutex> lk(conns_mu_);
      // Prune fully-closed connections so the list tracks live ones.
      std::erase_if(conns_, [](const std::shared_ptr<Conn>& c) { return !c->live(); });
      if (static_cast<int>(conns_.size()) >= opts_.max_connections) {
        const std::string msg = "ERR 0 too-many-connections\n";
        ::send(cfd, msg.data(), msg.size(), MSG_NOSIGNAL);
        ::close(cfd);
        conn->fd = -1;  // the Conn destructor must not re-close
        continue;
      }
      conns_.push_back(conn);
      conn_threads_.emplace_back([this, conn] { connLoop(conn); });
    }
  }
}

void Server::connLoop(std::shared_ptr<Conn> conn) {
  char magic[4];
  bool ok = false;
  try {
    ok = recvExact(conn->fd, magic, sizeof magic);
  } catch (const ProtocolError&) {
    ok = false;
  }
  if (ok) {
    if (std::memcmp(magic, kMagic, sizeof magic) == 0) {
      conn->binary = true;
      serveBinary(conn);
    } else {
      serveText(conn, std::string(magic, sizeof magic));
    }
  }
  std::lock_guard<std::mutex> lk(conn->write_mu);
  conn->read_done = true;
  conn->closeIfDoneLocked();
}

void Server::serveBinary(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    Frame f;
    try {
      if (!recvFrame(conn->fd, f)) return;  // clean EOF
    } catch (const ProtocolError& e) {
      ByteWriter w;
      w.putStr(e.what());
      conn->sendFrame(FrameType::Error, w.bytes());
      return;
    }
    try {
      ByteReader rd(f.payload);
      switch (f.type) {
        case FrameType::Hello: {
          conn->tenant = rd.getStr();
          ByteWriter w;
          w.putStr("eclipse-serve/1 tenant=" + conn->tenant);
          conn->sendFrame(FrameType::HelloOk, w.bytes());
          break;
        }
        case FrameType::Submit: {
          const std::uint64_t req_id = rd.getU64();
          handleSubmit(conn, req_id, rd.getStr());
          break;
        }
        case FrameType::Metrics: {
          ByteWriter w;
          w.putStr(metricsText());
          conn->sendFrame(FrameType::MetricsText, w.bytes());
          break;
        }
        case FrameType::Ping:
          conn->sendFrame(FrameType::Pong, {});
          break;
        case FrameType::Quit:
          conn->sendFrame(FrameType::Bye, {});
          return;
        default: {
          ByteWriter w;
          w.putStr("unexpected frame type");
          conn->sendFrame(FrameType::Error, w.bytes());
          return;
        }
      }
    } catch (const ProtocolError& e) {
      ByteWriter w;
      w.putStr(e.what());
      conn->sendFrame(FrameType::Error, w.bytes());
      return;
    }
  }
}

void Server::serveText(const std::shared_ptr<Conn>& conn, std::string carry) {
  std::string buf = std::move(carry);
  char chunk[4096];
  for (;;) {
    // Drain complete lines already buffered before reading more.
    std::size_t nl;
    while ((nl = buf.find('\n')) != std::string::npos) {
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::istringstream is(line);
      std::string cmd;
      if (!(is >> cmd)) continue;
      if (cmd == "HELLO") {
        std::string tenant;
        if (is >> tenant) {
          conn->tenant = tenant;
          conn->sendLine("OK hello " + tenant);
        } else {
          conn->sendLine("ERR 0 bad-command HELLO needs a tenant");
        }
      } else if (cmd == "SUBMIT") {
        std::string id_str;
        if (!(is >> id_str)) {
          conn->sendLine("ERR 0 bad-command SUBMIT needs an id");
          continue;
        }
        std::uint64_t req_id = 0;
        try {
          req_id = std::stoull(id_str);
        } catch (const std::exception&) {
          conn->sendLine("ERR 0 bad-command bad submit id: " + id_str);
          continue;
        }
        std::string spec;
        std::getline(is, spec);
        handleSubmit(conn, req_id, spec);
      } else if (cmd == "METRICS" || cmd == "GET") {
        // `GET /metrics` is accepted as a curl-friendly alias; any other
        // GET path is a bad command.
        std::string path;
        if (cmd == "GET" && (!(is >> path) || path != "/metrics")) {
          conn->sendLine("ERR 0 bad-command GET " + path);
          continue;
        }
        // One write: the text plus the "." terminator line.
        const std::string text = metricsText() + ".\n";
        conn->sendRaw(text.data(), text.size());
      } else if (cmd == "PING") {
        conn->sendLine("PONG");
      } else if (cmd == "QUIT") {
        conn->sendLine("BYE");
        return;
      } else {
        conn->sendLine("ERR 0 bad-command " + cmd);
      }
    }
    if (buf.size() > kMaxFramePayload) return;  // unbounded garbage line
    ssize_t k;
    do {
      k = ::recv(conn->fd, chunk, sizeof chunk, 0);
    } while (k < 0 && errno == EINTR);
    if (k <= 0) return;  // EOF or error
    buf.append(chunk, static_cast<std::size_t>(k));
  }
}

void Server::handleSubmit(const std::shared_ptr<Conn>& conn, std::uint64_t req_id,
                          const std::string& spec) {
  auto reject = [&](RejectReason why, const std::string& detail) {
    if (conn->binary) {
      ByteWriter w;
      w.putU64(req_id);
      w.putU8(static_cast<std::uint8_t>(why));
      w.putStr(detail);
      conn->sendFrame(FrameType::Rejected, w.bytes());
    } else {
      conn->sendLine("ERR " + std::to_string(req_id) + " " + rejectReasonName(why) +
                     (detail.empty() ? "" : " " + detail));
    }
  };

  ParsedSpec ps;
  std::string err;
  if (!parseJobSpec(spec, ps, err)) {
    reject(RejectReason::BadSpec, err);
    return;
  }

  // Count the result debt *before* admission: the callback may fire on a
  // farm thread before admit() even returns.
  {
    std::lock_guard<std::mutex> lk(conn->write_mu);
    ++conn->outstanding;
  }
  auto on_result = [this, conn, req_id](const farm::JobResult& r, const DispatchInfo& di) {
    const WireResult wr = makeWireResult(req_id, r, di.queue_ms, di.serve_ms, di.promoted);
    bool written;
    {
      std::lock_guard<std::mutex> lk(conn->write_mu);
      if (conn->binary) {
        ByteWriter w;
        w.putU64(req_id);
        encodeResult(w, wr);
        written = conn->sendFrameLocked(FrameType::Result, w.bytes());
      } else {
        const std::string line =
            "RESULT " + std::to_string(req_id) + " " + formatResultLine(wr) + "\n";
        written = conn->sendRawLocked(line.data(), line.size());
      }
      --conn->outstanding;
      conn->closeIfDoneLocked();
    }
    if (!written) results_dropped_.fetch_add(1, std::memory_order_relaxed);
  };

  const Dispatcher::Verdict v =
      dispatcher_->admit(conn->tenant, std::move(ps.job), ps.deadline_ms, std::move(on_result));
  if (v == Dispatcher::Verdict::Accepted) {
    if (conn->binary) {
      ByteWriter w;
      w.putU64(req_id);
      conn->sendFrame(FrameType::Accepted, w.bytes());
    } else {
      conn->sendLine("OK accepted " + std::to_string(req_id));
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lk(conn->write_mu);
    --conn->outstanding;  // never admitted: no result will come
  }
  switch (v) {
    case Dispatcher::Verdict::RateLimited:
      reject(RejectReason::RateLimited, "tenant over rate");
      break;
    case Dispatcher::Verdict::QueueFull:
      reject(RejectReason::QueueFull, "tenant queue full");
      break;
    case Dispatcher::Verdict::Draining:
      reject(RejectReason::Draining, "server draining");
      break;
    case Dispatcher::Verdict::UnknownTenant:
      reject(RejectReason::UnknownTenant, "say HELLO with a registered tenant");
      break;
    case Dispatcher::Verdict::Accepted:
      break;  // unreachable
  }
}

}  // namespace eclipse::serve
