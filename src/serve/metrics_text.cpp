#include "eclipse/serve/metrics_text.hpp"

#include <sstream>

namespace eclipse::serve {

namespace {

constexpr const char* kLaneNames[3] = {"high", "normal", "low"};

void counter(std::ostream& os, const char* name, const char* help, std::uint64_t v) {
  os << "# HELP " << name << ' ' << help << "\n# TYPE " << name << " counter\n"
     << name << ' ' << v << '\n';
}

void quantiles(std::ostream& os, const std::string& metric, const std::string& tenant,
               const Histogram& h) {
  static constexpr struct {
    const char* label;
    double q;
  } kQuantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
  for (const auto& e : kQuantiles) {
    os << metric << "{tenant=\"" << tenant << "\",quantile=\"" << e.label
       << "\"} " << h.percentile(e.q) << '\n';
  }
  os << metric << "_sum{tenant=\"" << tenant << "\"} " << h.sumMs() << '\n';
  os << metric << "_count{tenant=\"" << tenant << "\"} " << h.count() << '\n';
}

void buckets(std::ostream& os, const std::string& metric, const std::string& tenant,
             const Histogram& h) {
  const auto bounds = Histogram::bounds();
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < Histogram::kBuckets; ++i) {
    cum += h.bucketCount(i);
    os << metric << "_bucket{tenant=\"" << tenant << "\",le=\"";
    if (i + 1 == Histogram::kBuckets) {
      os << "+Inf";
    } else {
      os << bounds[i];
    }
    os << "\"} " << cum << '\n';
  }
}

}  // namespace

std::string renderMetricsText(const farm::FarmMetrics& farm,
                              const std::vector<TenantStats>& tenants) {
  std::ostringstream os;

  counter(os, "eclipse_farm_accepted_total", "Jobs accepted by the farm", farm.accepted);
  counter(os, "eclipse_farm_rejected_total", "Jobs rejected at farm admission", farm.rejected);
  counter(os, "eclipse_farm_completed_total", "Terminal results with status Completed",
          farm.completed);
  counter(os, "eclipse_farm_failed_total", "Terminal non-Completed results", farm.failed);
  counter(os, "eclipse_farm_retried_total", "Retry re-admissions staged", farm.retried);
  counter(os, "eclipse_farm_quarantined_total", "Jobs quarantined after killing two workers",
          farm.quarantined);
  counter(os, "eclipse_farm_workers_replaced_total", "Hung workers replaced",
          farm.workers_replaced);

  os << "# HELP eclipse_farm_lane_depth Jobs queued on the lane right now\n"
        "# TYPE eclipse_farm_lane_depth gauge\n";
  for (int i = 0; i < 3; ++i) {
    os << "eclipse_farm_lane_depth{lane=\"" << kLaneNames[i] << "\"} "
       << farm.lanes[static_cast<std::size_t>(i)].depth << '\n';
  }
  os << "# HELP eclipse_farm_lane_oldest_ms Queue age of the lane's head job\n"
        "# TYPE eclipse_farm_lane_oldest_ms gauge\n";
  for (int i = 0; i < 3; ++i) {
    os << "eclipse_farm_lane_oldest_ms{lane=\"" << kLaneNames[i] << "\"} "
       << farm.lanes[static_cast<std::size_t>(i)].oldest_ms << '\n';
  }
  os << "# HELP eclipse_farm_queue_depth Total jobs queued across lanes\n"
        "# TYPE eclipse_farm_queue_depth gauge\n"
        "eclipse_farm_queue_depth "
     << farm.queue_depth << '\n';
  os << "# HELP eclipse_farm_jobs_per_s Delivered results per second since start\n"
        "# TYPE eclipse_farm_jobs_per_s gauge\n"
        "eclipse_farm_jobs_per_s "
     << farm.jobs_per_s << '\n';

  os << "# HELP eclipse_serve_admitted_total Jobs admitted per tenant\n"
        "# TYPE eclipse_serve_admitted_total counter\n";
  for (const TenantStats& t : tenants)
    os << "eclipse_serve_admitted_total{tenant=\"" << t.config.name << "\"} " << t.admitted
       << '\n';
  os << "# HELP eclipse_serve_shed_total Jobs rejected at serve admission\n"
        "# TYPE eclipse_serve_shed_total counter\n";
  for (const TenantStats& t : tenants) {
    os << "eclipse_serve_shed_total{tenant=\"" << t.config.name << "\",reason=\"rate\"} "
       << t.shed_rate << '\n';
    os << "eclipse_serve_shed_total{tenant=\"" << t.config.name << "\",reason=\"queue\"} "
       << t.shed_queue << '\n';
  }
  os << "# HELP eclipse_serve_dispatched_total Jobs released into the farm\n"
        "# TYPE eclipse_serve_dispatched_total counter\n";
  for (const TenantStats& t : tenants)
    os << "eclipse_serve_dispatched_total{tenant=\"" << t.config.name << "\"} " << t.dispatched
       << '\n';
  os << "# HELP eclipse_serve_completed_total Terminal Completed results per tenant\n"
        "# TYPE eclipse_serve_completed_total counter\n";
  for (const TenantStats& t : tenants)
    os << "eclipse_serve_completed_total{tenant=\"" << t.config.name << "\"} " << t.completed
       << '\n';
  os << "# HELP eclipse_serve_failed_total Terminal non-Completed results per tenant\n"
        "# TYPE eclipse_serve_failed_total counter\n";
  for (const TenantStats& t : tenants)
    os << "eclipse_serve_failed_total{tenant=\"" << t.config.name << "\"} " << t.failed << '\n';
  os << "# HELP eclipse_serve_promoted_total Deadline-slack lane promotions per tenant\n"
        "# TYPE eclipse_serve_promoted_total counter\n";
  for (const TenantStats& t : tenants)
    os << "eclipse_serve_promoted_total{tenant=\"" << t.config.name << "\"} " << t.promoted
       << '\n';
  os << "# HELP eclipse_serve_pending Jobs waiting in the tenant queue\n"
        "# TYPE eclipse_serve_pending gauge\n";
  for (const TenantStats& t : tenants)
    os << "eclipse_serve_pending{tenant=\"" << t.config.name << "\"} " << t.pending << '\n';
  os << "# HELP eclipse_serve_inflight Jobs inside the farm per tenant\n"
        "# TYPE eclipse_serve_inflight gauge\n";
  for (const TenantStats& t : tenants)
    os << "eclipse_serve_inflight{tenant=\"" << t.config.name << "\"} " << t.inflight << '\n';

  os << "# HELP eclipse_serve_latency_ms Serve latency, admission to result\n"
        "# TYPE eclipse_serve_latency_ms summary\n";
  for (const TenantStats& t : tenants)
    quantiles(os, "eclipse_serve_latency_ms", t.config.name, t.latency);
  os << "# HELP eclipse_serve_latency_ms_hist Serve latency histogram\n"
        "# TYPE eclipse_serve_latency_ms_hist histogram\n";
  for (const TenantStats& t : tenants)
    buckets(os, "eclipse_serve_latency_ms_hist", t.config.name, t.latency);
  os << "# HELP eclipse_serve_queue_age_ms Queue age, admission to dispatch\n"
        "# TYPE eclipse_serve_queue_age_ms summary\n";
  for (const TenantStats& t : tenants)
    quantiles(os, "eclipse_serve_queue_age_ms", t.config.name, t.queue_age);
  os << "# HELP eclipse_serve_queue_age_ms_hist Queue-age histogram\n"
        "# TYPE eclipse_serve_queue_age_ms_hist histogram\n";
  for (const TenantStats& t : tenants)
    buckets(os, "eclipse_serve_queue_age_ms_hist", t.config.name, t.queue_age);

  return os.str();
}

}  // namespace eclipse::serve
