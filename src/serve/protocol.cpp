#include "eclipse/serve/protocol.hpp"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <sstream>

namespace eclipse::serve {

WireResult makeWireResult(std::uint64_t req_id, const farm::JobResult& r, double queue_ms,
                          double serve_ms, bool promoted) {
  WireResult w;
  w.req_id = req_id;
  w.name = r.name;
  w.tenant = r.tenant;
  w.status = r.status;
  w.cause = r.cause;
  w.sim_cycles = r.sim_cycles;
  w.sim_events = r.sim_events;
  w.macroblocks = r.macroblocks;
  w.bit_exact = r.bit_exact;
  w.psnr_db = r.psnr_db;
  w.faults_latched = r.faults_latched;
  w.stalls_latched = r.stalls_latched;
  w.frames_dropped = r.frames_dropped;
  w.mode_switches = r.mode_switches;
  w.quiescence = r.quiescence;
  w.attempts = r.attempts;
  w.lanes = r.lanes;
  w.wall_ms = r.wall_ms;
  w.latency_ms = r.latency_ms;
  w.queue_ms = queue_ms;
  w.serve_ms = serve_ms;
  w.promoted = promoted;
  w.error = r.error;
  return w;
}

namespace {
constexpr std::uint8_t kResultVersion = 1;
}

void encodeResult(ByteWriter& w, const WireResult& r) {
  w.putU8(kResultVersion);
  w.putStr(r.name);
  w.putStr(r.tenant);
  w.putU8(static_cast<std::uint8_t>(r.status));
  w.putU8(static_cast<std::uint8_t>(r.cause));
  w.putU64(r.sim_cycles);
  w.putU64(r.sim_events);
  w.putU64(r.macroblocks);
  w.putU8(r.bit_exact ? 1 : 0);
  w.putF64(r.psnr_db);
  w.putU64(r.faults_latched);
  w.putU64(r.stalls_latched);
  w.putU64(r.frames_dropped);
  w.putU64(r.mode_switches);
  w.putStr(r.quiescence);
  w.putU32(static_cast<std::uint32_t>(r.attempts));
  w.putU32(r.lanes);
  w.putF64(r.wall_ms);
  w.putF64(r.latency_ms);
  w.putF64(r.queue_ms);
  w.putF64(r.serve_ms);
  w.putU8(r.promoted ? 1 : 0);
  w.putStr(r.error);
}

WireResult decodeResult(ByteReader& rd) {
  const std::uint8_t version = rd.getU8();
  if (version != kResultVersion) throw ProtocolError("unknown result version");
  WireResult r;
  r.name = rd.getStr();
  r.tenant = rd.getStr();
  r.status = static_cast<farm::JobStatus>(rd.getU8());
  r.cause = static_cast<farm::JobError>(rd.getU8());
  r.sim_cycles = rd.getU64();
  r.sim_events = rd.getU64();
  r.macroblocks = rd.getU64();
  r.bit_exact = rd.getU8() != 0;
  r.psnr_db = rd.getF64();
  r.faults_latched = rd.getU64();
  r.stalls_latched = rd.getU64();
  r.frames_dropped = rd.getU64();
  r.mode_switches = rd.getU64();
  r.quiescence = rd.getStr();
  r.attempts = static_cast<int>(rd.getU32());
  r.lanes = rd.getU32();
  r.wall_ms = rd.getF64();
  r.latency_ms = rd.getF64();
  r.queue_ms = rd.getF64();
  r.serve_ms = rd.getF64();
  r.promoted = rd.getU8() != 0;
  r.error = rd.getStr();
  return r;
}

std::string formatResultLine(const WireResult& r) {
  std::ostringstream os;
  os << "name=" << r.name << " tenant=" << r.tenant
     << " status=" << farm::jobStatusName(r.status) << " cause=" << farm::jobErrorName(r.cause)
     << " cycles=" << r.sim_cycles << " events=" << r.sim_events << " mbs=" << r.macroblocks
     << " bit_exact=" << (r.bit_exact ? 1 : 0) << " psnr=" << r.psnr_db
     << " attempts=" << r.attempts << " promoted=" << (r.promoted ? 1 : 0)
     << " queue_ms=" << r.queue_ms << " serve_ms=" << r.serve_ms;
  if (!r.error.empty()) os << " error=" << r.error;
  return os.str();
}

bool recvExact(int fd, void* buf, std::size_t n) {
  auto* p = static_cast<std::uint8_t*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t k = ::recv(fd, p + got, n - got, 0);
    if (k == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw ProtocolError("connection closed mid-frame");
    }
    if (k < 0) {
      if (errno == EINTR) continue;
      if (got == 0) return false;  // reset before anything arrived
      throw ProtocolError("recv failed mid-frame");
    }
    got += static_cast<std::size_t>(k);
  }
  return true;
}

namespace {
bool sendAll(int fd, const void* buf, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(buf);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t k = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(k);
  }
  return true;
}
}  // namespace

bool sendFrame(int fd, FrameType type, const std::vector<std::uint8_t>& payload) {
  ByteWriter head;
  head.putU32(static_cast<std::uint32_t>(payload.size()));
  head.putU8(static_cast<std::uint8_t>(type));
  if (!sendAll(fd, head.bytes().data(), head.bytes().size())) return false;
  return payload.empty() || sendAll(fd, payload.data(), payload.size());
}

bool recvFrame(int fd, Frame& out) {
  std::uint8_t head[5];
  if (!recvExact(fd, head, sizeof head)) return false;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<std::uint32_t>(head[i]) << (8 * i);
  if (len > kMaxFramePayload) throw ProtocolError("oversized frame");
  out.type = static_cast<FrameType>(head[4]);
  out.payload.resize(len);
  if (len > 0 && !recvExact(fd, out.payload.data(), len))
    throw ProtocolError("connection closed mid-frame");
  return true;
}

}  // namespace eclipse::serve
