#include "eclipse/serve/jobspec.hpp"

#include <sstream>

#include "eclipse/sim/fault.hpp"
#include "eclipse/sim/prng.hpp"

namespace eclipse::serve {

namespace {

/// Seeded fault-storm spec, derived exactly like the farm soak's stormJob
/// so served chaos jobs hit the same (seed, kind) → spec mapping the
/// in-process oracles use.
sim::FaultSpec stormSpec(std::uint64_t seed, sim::FaultKind kind) {
  sim::Prng rng(seed * 977 + static_cast<std::uint64_t>(kind));
  sim::FaultSpec spec;
  spec.kind = kind;
  spec.at_cycle = 2'000 + rng.below(60'000);
  if (kind == sim::FaultKind::TaskHang) {
    spec.shell = static_cast<std::uint32_t>(rng.below(4));
    spec.task = 0;
    spec.delay_cycles = 10'000 + rng.below(100'000);
  } else {  // CorruptPayload at the VLD coefficient output
    spec.shell = 0;
    spec.task = 0;
    spec.port = 0;
    spec.xor_mask = static_cast<std::uint8_t>(1 + rng.below(255));
  }
  return spec;
}

}  // namespace

bool parseJobSpec(const std::string& spec, ParsedSpec& out, std::string& err) {
  std::istringstream is(spec);
  std::string name;
  if (!(is >> name) || name[0] == '#') {
    err = "empty job spec";
    return false;
  }

  out = ParsedSpec{};
  farm::Job& job = out.job;
  job.name = name;
  farm::WorkloadDesc wd;  // shared by every app of the job
  std::vector<farm::AppKind> kinds{farm::AppKind::Decode};
  std::string storm;  // applied after the loop (needs storm_seed)
  std::uint64_t storm_seed = 1;

  std::string field;
  while (is >> field) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) {
      err = "field without '=': " + field;
      return false;
    }
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    try {
      if (key == "kind") {
        kinds.clear();
        std::istringstream ks(val);
        std::string k;
        while (std::getline(ks, k, '+')) {
          if (k == "decode") {
            kinds.push_back(farm::AppKind::Decode);
          } else if (k == "encode") {
            kinds.push_back(farm::AppKind::Encode);
          } else {
            err = "unknown kind: " + k;
            return false;
          }
        }
        if (kinds.empty()) {
          err = "empty kind list";
          return false;
        }
      } else if (key == "width") {
        wd.width = std::stoi(val);
      } else if (key == "height") {
        wd.height = std::stoi(val);
      } else if (key == "frames") {
        wd.frames = std::stoi(val);
      } else if (key == "seed") {
        wd.seed = std::stoull(val);
      } else if (key == "qscale") {
        wd.qscale = std::stoi(val);
      } else if (key == "gop") {
        const auto comma = val.find(',');
        wd.gop_n = std::stoi(val.substr(0, comma));
        if (comma != std::string::npos) wd.gop_m = std::stoi(val.substr(comma + 1));
      } else if (key == "detail") {
        wd.detail = std::stoi(val);
      } else if (key == "motion") {
        wd.motion_speed = std::stoi(val);
      } else if (key == "noise") {
        wd.noise_level = std::stod(val);
      } else if (key == "priority") {
        if (val == "high") {
          job.priority = farm::Priority::High;
        } else if (val == "normal") {
          job.priority = farm::Priority::Normal;
        } else if (val == "low") {
          job.priority = farm::Priority::Low;
        } else {
          err = "unknown priority: " + val;
          return false;
        }
      } else if (key == "max_cycles") {
        job.max_cycles = std::stoull(val);
      } else if (key == "verify") {
        job.verify = val != "0" && val != "false";
      } else if (key == "shards") {
        job.shards = static_cast<std::uint32_t>(std::stoul(val));
      } else if (key == "retries") {
        job.retry.max_attempts = std::stoi(val);
      } else if (key == "backoff_ms") {
        job.retry.backoff_ms = std::stod(val);
      } else if (key == "deadline") {
        job.deadline = std::stoull(val);
      } else if (key == "supervise_ms") {
        job.supervise_ms = std::stod(val);
      } else if (key == "deadline_ms") {
        out.deadline_ms = std::stod(val);
      } else if (key == "storm") {
        if (val != "hang" && val != "corrupt") {
          err = "unknown storm: " + val;
          return false;
        }
        storm = val;
      } else if (key == "storm_seed") {
        storm_seed = std::stoull(val);
      } else if (key == "watchdog") {
        job.watchdog_timeout = std::stoull(val);
      } else if (key == "hang_ms") {
        job.chaos.hang_ms = std::stod(val);
      } else if (key == "hang_attempts") {
        job.chaos.attempts = std::stoi(val);
      } else if (key.rfind("config:", 0) == 0) {
        job.config.set(key.substr(7), val);
      } else {
        err = "unknown field: " + key;
        return false;
      }
    } catch (const std::exception&) {
      err = "bad value for " + key + ": " + val;
      return false;
    }
  }

  if (!storm.empty()) {
    const sim::FaultKind kind =
        storm == "hang" ? sim::FaultKind::TaskHang : sim::FaultKind::CorruptPayload;
    job.faults.seed = storm_seed;
    job.faults.faults.push_back(stormSpec(storm_seed, kind));
  }
  if (out.deadline_ms < 0.0) {
    err = "negative deadline_ms";
    return false;
  }

  job.apps.clear();
  for (farm::AppKind k : kinds) job.apps.push_back(farm::AppSpec{k, wd});
  return true;
}

}  // namespace eclipse::serve
