#include "eclipse/serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <stdexcept>

namespace eclipse::serve {

void Client::connect(const std::string& host, std::uint16_t port, const std::string& tenant) {
  if (fd_ >= 0) throw std::runtime_error("client already connected");
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw std::runtime_error("client: socket() failed");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::runtime_error("client: bad host (IPv4 literal expected): " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    close();
    throw std::runtime_error("client: cannot connect " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  if (::send(fd_, kMagic, sizeof kMagic, MSG_NOSIGNAL) != sizeof kMagic) {
    close();
    throw std::runtime_error("client: handshake write failed");
  }
  ByteWriter w;
  w.putStr(tenant);
  if (!sendFrame(fd_, FrameType::Hello, w.bytes())) {
    close();
    throw std::runtime_error("client: hello write failed");
  }
  const Frame f = readUntil({FrameType::HelloOk});
  (void)f;
}

Client::Submitted Client::submit(const std::string& spec) {
  Submitted s;
  s.req_id = next_req_id_++;
  ByteWriter w;
  w.putU64(s.req_id);
  w.putStr(spec);
  if (!sendFrame(fd_, FrameType::Submit, w.bytes()))
    throw ProtocolError("submit write failed");

  // The reply for *this* id: results (even for this id, under extreme
  // server speed) and replies never reorder within a type, but a Result
  // may legally precede the Accepted — buffer and keep reading.
  const Frame f = readUntil({FrameType::Accepted, FrameType::Rejected});
  ByteReader rd(f.payload);
  const std::uint64_t id = rd.getU64();
  if (id != s.req_id) throw ProtocolError("reply for unexpected req_id");
  if (f.type == FrameType::Accepted) {
    s.accepted = true;
    outstanding_[s.req_id] = true;
  } else {
    s.accepted = false;
    s.reason = static_cast<RejectReason>(rd.getU8());
    s.detail = rd.getStr();
  }
  return s;
}

WireResult Client::await(std::uint64_t req_id) {
  for (;;) {
    auto it = results_.find(req_id);
    if (it != results_.end()) {
      WireResult r = std::move(it->second);
      results_.erase(it);
      outstanding_.erase(req_id);
      return r;
    }
    bufferResult(readUntil({FrameType::Result}));
  }
}

std::vector<WireResult> Client::awaitAll() {
  std::vector<WireResult> out;
  while (!outstanding_.empty()) {
    out.push_back(await(outstanding_.begin()->first));
  }
  return out;
}

std::string Client::metricsText() {
  if (!sendFrame(fd_, FrameType::Metrics, {})) throw ProtocolError("metrics write failed");
  const Frame f = readUntil({FrameType::MetricsText});
  ByteReader rd(f.payload);
  return rd.getStr();
}

void Client::ping() {
  if (!sendFrame(fd_, FrameType::Ping, {})) throw ProtocolError("ping write failed");
  (void)readUntil({FrameType::Pong});
}

void Client::close() {
  if (fd_ < 0) return;
  // Best-effort goodbye; the server also handles plain EOF.
  sendFrame(fd_, FrameType::Quit, {});
  ::close(fd_);
  fd_ = -1;
}

Frame Client::readUntil(std::initializer_list<FrameType> want) {
  for (;;) {
    Frame f;
    if (!recvFrame(fd_, f)) throw ProtocolError("server closed the connection");
    for (FrameType t : want) {
      if (f.type == t) return f;
    }
    if (f.type == FrameType::Result) {
      bufferResult(f);
      continue;
    }
    if (f.type == FrameType::Error) {
      ByteReader rd(f.payload);
      throw ProtocolError("server error: " + rd.getStr());
    }
    throw ProtocolError("unexpected frame while waiting");
  }
}

void Client::bufferResult(const Frame& f) {
  ByteReader rd(f.payload);
  const std::uint64_t id = rd.getU64();
  WireResult r = decodeResult(rd);
  r.req_id = id;
  results_.emplace(id, std::move(r));
}

}  // namespace eclipse::serve
