#include "eclipse/serve/dispatcher.hpp"

#include <utility>

namespace eclipse::serve {

namespace {
using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point t0, Clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}
}  // namespace

Dispatcher::Dispatcher(farm::Farm& farm, DispatcherOptions options)
    : farm_(farm), opts_(std::move(options)) {
  thread_ = std::thread([this] { threadMain(); });
}

Dispatcher::~Dispatcher() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();

  // Fail whatever never reached the farm, then wait for the farm to
  // deliver what did — its callbacks still land here, so the dispatcher
  // must not be torn down under them. (A drained server reaches this with
  // outstanding_ already 0.)
  std::vector<std::pair<Pending, std::string>> orphans;
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& [name, t] : tenants_) {
      while (!t.pending.empty()) {
        orphans.emplace_back(std::move(t.pending.front()), name);
        t.pending.pop_front();
        ++t.failed;
        --outstanding_;
      }
    }
  }
  for (auto& [p, name] : orphans) {
    farm::JobResult r;
    r.name = p.job.name;
    r.tenant = name;
    r.status = farm::JobStatus::Error;
    r.error = "dispatcher shut down before dispatch";
    if (p.on_result) {
      const auto now = Clock::now();
      p.on_result(r, DispatchInfo{msSince(p.admitted, now), msSince(p.admitted, now),
                                  p.promoted});
    }
  }
  std::unique_lock<std::mutex> lk(mu_);
  drained_.wait(lk, [&] { return outstanding_ == 0; });
}

void Dispatcher::configureTenant(const TenantConfig& cfg) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    Tenant& t = tenants_[cfg.name];  // creates on first sight
    t.config = cfg;
  }
  cv_.notify_all();  // new limits may unblock a stalled tenant
}

Dispatcher::Verdict Dispatcher::admit(const std::string& tenant, farm::Job job,
                                      double deadline_ms, ResultFn on_result) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (draining_ || stop_) return Verdict::Draining;
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      if (!opts_.auto_register) return Verdict::UnknownTenant;
      Tenant fresh;
      fresh.config = opts_.default_tenant;
      fresh.config.name = tenant;
      it = tenants_.emplace(tenant, std::move(fresh)).first;
    }
    Tenant& t = it->second;
    if (t.pending.size() >= t.config.max_pending) {
      ++t.shed_queue;
      return Verdict::QueueFull;
    }
    const auto now = Clock::now();
    if (t.config.policy == OverloadPolicy::Shed) {
      // Shed tenants pay their token at the door: over-rate traffic is
      // rejected immediately instead of buffering (Queue tenants pay at
      // dispatch and get paced instead).
      t.bucket.refill(t.config, now);
      if (!t.bucket.tryTake(t.config)) {
        ++t.shed_rate;
        return Verdict::RateLimited;
      }
    }
    Pending p;
    p.job = std::move(job);
    p.job.tenant = tenant;
    p.deadline_ms = deadline_ms;
    p.admitted = now;
    p.on_result = std::move(on_result);
    t.pending.push_back(std::move(p));
    ++t.admitted;
    ++outstanding_;
  }
  cv_.notify_all();
  return Verdict::Accepted;
}

void Dispatcher::beginDrain() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    draining_ = true;
  }
  cv_.notify_all();
}

bool Dispatcher::draining() const {
  std::lock_guard<std::mutex> lk(mu_);
  return draining_;
}

void Dispatcher::awaitDrained() {
  std::unique_lock<std::mutex> lk(mu_);
  drained_.wait(lk, [&] { return outstanding_ == 0; });
}

std::vector<TenantStats> Dispatcher::tenantStats() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<TenantStats> out;
  out.reserve(tenants_.size());
  for (const auto& [name, t] : tenants_) {
    TenantStats s;
    s.config = t.config;
    s.admitted = t.admitted;
    s.shed_rate = t.shed_rate;
    s.shed_queue = t.shed_queue;
    s.dispatched = t.dispatched;
    s.completed = t.completed;
    s.failed = t.failed;
    s.promoted = t.promoted;
    s.pending = t.pending.size();
    s.inflight = t.inflight;
    s.latency = t.latency;
    s.queue_age = t.queue_age;
    out.push_back(std::move(s));
  }
  return out;
}

std::size_t Dispatcher::outstanding() const {
  std::lock_guard<std::mutex> lk(mu_);
  return outstanding_;
}

void Dispatcher::threadMain() {
  std::unique_lock<std::mutex> lk(mu_);
  while (!stop_) {
    promotionScan(Clock::now());
    const bool any = dispatchRound(lk);
    if (stop_) break;
    if (!any) {
      cv_.wait_for(lk, std::chrono::duration<double, std::milli>(opts_.poll_ms));
    }
  }
}

void Dispatcher::promotionScan(Clock::time_point now) {
  for (auto& [name, t] : tenants_) {
    for (Pending& p : t.pending) {
      if (p.deadline_ms <= 0.0 || p.promoted) continue;
      const double slack = p.deadline_ms - msSince(p.admitted, now);
      if (slack >= opts_.promote_slack_ms) continue;
      p.promoted = true;  // one promotion per job: urgency buys one lane
      if (p.job.priority != farm::Priority::High) {
        p.job.priority = farm::promoted(p.job.priority);
        ++t.promoted;
      }
    }
  }
}

bool Dispatcher::dispatchRound(std::unique_lock<std::mutex>& lk) {
  bool any = false;
  const auto now = Clock::now();
  for (auto& [name, t] : tenants_) {
    if (t.pending.empty()) {
      t.deficit = 0.0;  // classic DRR: no banking credit across idle spells
      continue;
    }
    t.bucket.refill(t.config, now);
    // Cap the deficit so a tenant parked on its quota cannot bank an
    // unbounded burst for later.
    t.deficit = std::min(t.deficit + t.config.weight, std::max(1.0, t.config.weight * 8.0));
    while (t.deficit >= 1.0 && !t.pending.empty()) {
      if (t.inflight >= t.config.max_inflight) break;
      // Queue-policy tenants are paced here; a drain bypasses pacing so
      // accepted work finishes as fast as the farm allows.
      const bool need_token = !draining_ && t.config.policy == OverloadPolicy::Queue;
      if (need_token && !t.bucket.tryTake(t.config)) break;
      if (!releaseFront(t)) {
        if (need_token) t.bucket.refund(t.config);
        return any;  // farm queue full: a global condition, end the round
      }
      t.deficit -= 1.0;
      any = true;
    }
  }
  (void)lk;
  return any;
}

bool Dispatcher::releaseFront(Tenant& t) {
  Pending p = std::move(t.pending.front());
  t.pending.pop_front();
  const auto now = Clock::now();
  const double queue_ms = msSince(p.admitted, now);

  Tenant* tp = &t;  // map nodes are stable; tenants are never erased
  // Shared so the callback can be reclaimed on the non-Accepted paths
  // below (std::function must be copyable, so a move-only capture is out).
  auto user = std::make_shared<ResultFn>(std::move(p.on_result));
  auto on_terminal = [this, tp, admitted = p.admitted, queue_ms, was_promoted = p.promoted,
                      user](const farm::JobResult& r) {
    DispatchInfo info;
    info.queue_ms = queue_ms;
    info.serve_ms = msSince(admitted, Clock::now());
    info.promoted = was_promoted;
    {
      std::lock_guard<std::mutex> lk(mu_);
      --tp->inflight;
      ++(r.status == farm::JobStatus::Completed ? tp->completed : tp->failed);
      tp->latency.record(info.serve_ms);
      --outstanding_;
      if (outstanding_ == 0) drained_.notify_all();
      // Notify *inside* the lock: past it this thread must not touch the
      // dispatcher again — a destructor woken by drained_ may free it.
      cv_.notify_all();  // a freed quota slot may unblock the next dispatch
    }
    if (*user) (*user)(r, info);
  };

  // Farm locks are taken briefly inside; the terminal callback never fires
  // synchronously (workers pop asynchronously), so holding mu_ here cannot
  // deadlock against on_terminal's lock acquisition.
  farm::SubmitTicket ticket = farm_.submitCallback(p.job, std::move(on_terminal));
  if (ticket.admission == farm::Admission::Accepted) {
    ++t.inflight;
    ++t.dispatched;
    t.queue_age.record(queue_ms);
    return true;
  }
  if (ticket.admission == farm::Admission::QueueFull) {
    // Back at the front: tenant FIFO order is part of the QoS contract.
    p.on_result = std::move(*user);
    t.pending.push_front(std::move(p));
    return false;
  }
  // ShuttingDown: the farm closed under us (server teardown). Terminal-fail
  // rather than strand the client (the callback runs under mu_ here — a
  // teardown-only path, and the callback only takes leaf locks).
  p.on_result = std::move(*user);
  failPending(t, std::move(p), "farm shutting down");
  return true;  // the round may continue; this tenant made "progress"
}

void Dispatcher::failPending(Tenant& t, Pending&& p, const char* why) {
  farm::JobResult r;
  r.name = p.job.name;
  r.tenant = p.job.tenant;
  r.status = farm::JobStatus::Error;
  r.error = why;
  ++t.failed;
  --outstanding_;
  if (outstanding_ == 0) drained_.notify_all();
  if (p.on_result) {
    const auto now = Clock::now();
    p.on_result(r, DispatchInfo{msSince(p.admitted, now), msSince(p.admitted, now),
                                p.promoted});
  }
}

}  // namespace eclipse::serve
