#include "eclipse/sim/simulator.hpp"

#include <cstdio>
#include <stdexcept>
#include <utility>

namespace eclipse::sim {

namespace detail {

void notifyRootDone(Simulator& sim, std::exception_ptr exception) {
  if (sim.engine_) {
    sim.engine_->notifyRootDone(exception);
    return;
  }
  if (sim.live_ > 0) --sim.live_;
  if (exception && !sim.pending_error_) {
    sim.pending_error_ = exception;
    sim.stop();
  }
}

}  // namespace detail

Simulator::~Simulator() { destroyProcesses(); }

void Simulator::destroyProcesses() {
  if (engine_) {
    engine_->destroyProcesses();
    return;
  }
  // Destroy remaining coroutine frames. Frames suspended at a co_await are
  // safe to destroy; their local objects are unwound. Pending events may
  // capture handles into these frames, so the queue goes first.
  queue_.clear();
  for (auto& root : roots_) {
    if (root.handle) {
      root.handle.destroy();
      root.handle = nullptr;
    }
  }
  roots_.clear();
  live_ = 0;
}

void Simulator::setShardCount(std::uint32_t shards) {
  // Idempotent for an unchanged count: a recycled (farm-reused) instance
  // re-applies its plan without resetting lanes or simulated time — the
  // serial kernel's clock also persists across recycles.
  if (engine_ && engine_->shardCount() == shards) return;
  const bool pristine = engine_ ? (engine_->quiescent() && engine_->liveProcesses() == 0)
                                : (queue_.empty() && roots_.empty());
  if (!pristine) {
    throw std::logic_error("setShardCount requires a pristine simulator "
                           "(no spawned processes or pending events)");
  }
  if (shards <= 1) {
    engine_.reset();
    return;
  }
  engine_ = std::make_unique<ShardEngine>(*this, shards);
}

void Simulator::assertOnShard(ShardId home, const char* what) const {
  if (!engine_) return;
  ShardScheduler* lane = engine_->executingLane();
  if (lane != nullptr && lane->id != home) {
    throw std::logic_error(std::string("shard-affinity violation: ") + what +
                           " is homed on shard " + std::to_string(home) +
                           " but was touched from shard " + std::to_string(lane->id));
  }
}

void Simulator::spawn(Task<void> task, std::string name, ShardId shard) {
  if (engine_) {
    auto handle = task.release();
    handle.promise().root_sim = this;
    engine_->spawn(handle, std::move(name), shard);
    return;
  }
  // Reclaim finished frames so long runs with many short-lived processes
  // (e.g. cache prefetches) do not accumulate unbounded memory.
  if (roots_.size() >= 1024) {
    std::erase_if(roots_, [](RootProcess& r) {
      if (r.handle && r.handle.done()) {
        r.handle.destroy();
        return true;
      }
      return false;
    });
  }
  auto handle = task.release();
  handle.promise().root_sim = this;
  roots_.push_back(RootProcess{std::move(name), handle});
  ++live_;
  scheduleResume(0, handle);
}

Cycle Simulator::run(Cycle until) {
  if (engine_) return engine_->run(until);
  stop_requested_ = false;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.nextCycle() > until) {
      now_ = until;
      return now_;
    }
    Cycle at = 0;
    Event ev = queue_.pop(&at);
    now_ = at;
    ++events_;
    ev();
    if (pending_error_) {
      auto err = std::exchange(pending_error_, nullptr);
      std::rethrow_exception(err);
    }
  }
  return now_;
}

void Simulator::trace(int level, std::string_view msg) const {
  if (level <= verbosity_) {
    std::fprintf(stderr, "[%12llu] %.*s\n", static_cast<unsigned long long>(now()),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace eclipse::sim
