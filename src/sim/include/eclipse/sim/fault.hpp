#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

#include "eclipse/sim/types.hpp"

namespace eclipse::sim {

/// Deterministic fault injection for the simulation kernel.
///
/// A FaultPlan is a list of cycle-scheduled FaultSpecs; the FaultInjector
/// holds the armed plan and is *queried* by the models at well-defined
/// points (message send, task dispatch, stream commit). With no plan armed
/// the injector pointer on the Simulator is null and every hook is a
/// branch-on-null — the no-fault timing stays bit-identical.
///
/// The injector itself draws no random numbers: randomised campaigns seed a
/// Prng externally and derive the spec fields (cycles, addresses, bits)
/// from it, so a (plan, seed) pair always reproduces the same run.
///
/// Sharding: the hooks are called from lane threads during the same barrier
/// window (e.g. MessageNetwork::send on a split plan), so every mutating
/// path serializes on an internal mutex. Determinism is unaffected: each
/// spec matches on a shell (or shell+task[+port]) key, a shell is affine to
/// one lane, so a given spec's budget is only ever consumed from one lane —
/// the mutex just keeps the shared containers intact. The one wall-clock-
/// dependent artifact is the *interleaving* of the trigger log across lanes
/// within a window; per-shell subsequences and per-kind counts stay
/// deterministic. Read triggers()/triggerCount() only outside run().
enum class FaultKind : std::uint8_t {
  DropPutspace,    ///< silently discard a putspace message leaving a shell
  DelayPutspace,   ///< deliver a putspace message late by delay_cycles
  BitFlipSram,     ///< flip one bit of an on-chip stream-buffer byte
  BitFlipDram,     ///< flip one bit of an off-chip byte
  TaskHang,        ///< a dispatched task wedges for delay_cycles, no progress
  CorruptPayload,  ///< XOR the payload of a packet committed at a port
};

[[nodiscard]] constexpr const char* faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::DropPutspace: return "drop-putspace";
    case FaultKind::DelayPutspace: return "delay-putspace";
    case FaultKind::BitFlipSram: return "bitflip-sram";
    case FaultKind::BitFlipDram: return "bitflip-dram";
    case FaultKind::TaskHang: return "task-hang";
    case FaultKind::CorruptPayload: return "corrupt-payload";
  }
  return "?";
}

/// One scheduled fault. Which fields matter depends on `kind`:
///  * DropPutspace / DelayPutspace: shell (message source), window, count.
///  * BitFlipSram / BitFlipDram: addr, bit, at_cycle (fires once, as an
///    event armed by the owner of the memories).
///  * TaskHang: shell, task, window, count, delay_cycles (hang length).
///  * CorruptPayload: shell, task, port, window, count, xor_mask.
struct FaultSpec {
  FaultKind kind = FaultKind::DropPutspace;
  std::uint32_t shell = 0;
  TaskId task = 0;
  PortId port = 0;
  Cycle at_cycle = 0;     ///< window start (inclusive)
  Cycle until_cycle = 0;  ///< window end (inclusive); 0 = unbounded
  std::uint32_t count = 1;  ///< triggers left inside the window; 0 = unlimited
  Cycle delay_cycles = 0;
  Addr addr = 0;
  std::uint32_t bit = 0;
  std::uint8_t xor_mask = 0x40;
};

/// A plan: the specs plus the seed they were derived from (provenance for
/// logs and reproduction; the injector never draws randomness itself).
struct FaultPlan {
  std::vector<FaultSpec> faults;
  std::uint64_t seed = 0;
};

/// One fault that actually fired (for tests, benchmarks and reports).
struct FaultTrigger {
  FaultKind kind = FaultKind::DropPutspace;
  Cycle cycle = 0;
  std::uint32_t shell = 0;
  TaskId task = 0;
  std::uint32_t detail = 0;  ///< row / bytes / low address bits, kind-specific
};

class FaultInjector {
 public:
  void arm(const FaultSpec& spec) {
    std::lock_guard lk(m_);
    specs_.push_back(spec);
  }
  void clear() {
    std::lock_guard lk(m_);
    specs_.clear();
    spent_.clear();  // budgets are per-plan; the trigger log survives re-arming
  }
  [[nodiscard]] bool armed() const { return !specs_.empty(); }

  /// MessageNetwork hook: drop the putspace message leaving `src_shell`?
  bool shouldDropPutspace(std::uint32_t src_shell, Cycle now) {
    std::lock_guard lk(m_);
    FaultSpec* s = match(FaultKind::DropPutspace, now,
                         [&](const FaultSpec& f) { return f.shell == src_shell; });
    if (s == nullptr) return false;
    consume(*s);
    return true;
  }

  /// MessageNetwork hook: extra delivery latency for a message leaving
  /// `src_shell` (0 = deliver normally).
  Cycle putspaceDelay(std::uint32_t src_shell, Cycle now) {
    std::lock_guard lk(m_);
    FaultSpec* s = match(FaultKind::DelayPutspace, now,
                         [&](const FaultSpec& f) { return f.shell == src_shell; });
    if (s == nullptr) return 0;
    consume(*s);
    return s->delay_cycles;
  }

  /// Coprocessor hook: cycles the dispatched (shell, task) wedges for
  /// instead of executing its processing step (0 = run normally).
  Cycle taskHangCycles(std::uint32_t shell, TaskId task, Cycle now) {
    std::lock_guard lk(m_);
    FaultSpec* s = match(FaultKind::TaskHang, now, [&](const FaultSpec& f) {
      return f.shell == shell && f.task == task;
    });
    if (s == nullptr) return 0;
    consume(*s);
    return s->delay_cycles;
  }

  /// Shell hook: XOR mask to apply to a packet payload committed at
  /// (shell, task, port), or nullopt to commit cleanly.
  std::optional<std::uint8_t> corruptPayload(std::uint32_t shell, TaskId task, PortId port,
                                             Cycle now) {
    std::lock_guard lk(m_);
    FaultSpec* s = match(FaultKind::CorruptPayload, now, [&](const FaultSpec& f) {
      return f.shell == shell && f.task == task && f.port == port;
    });
    if (s == nullptr) return std::nullopt;
    consume(*s);
    return s->xor_mask;
  }

  /// Records a fault that fired (also called by externally armed events,
  /// e.g. the instance's scheduled bit-flips).
  void logTrigger(const FaultTrigger& t) {
    std::lock_guard lk(m_);
    triggers_.push_back(t);
  }

  [[nodiscard]] const std::vector<FaultTrigger>& triggers() const { return triggers_; }
  [[nodiscard]] std::size_t triggerCount(FaultKind k) const {
    std::size_t n = 0;
    for (const auto& t : triggers_) {
      if (t.kind == k) ++n;
    }
    return n;
  }

  /// Locked copies for callers that cannot prove they are outside run()
  /// (e.g. the farm's result plumbing while shard lanes are parked): safe
  /// against concurrent hook calls, unlike the borrowing accessors above.
  [[nodiscard]] std::vector<FaultTrigger> triggersSnapshot() const {
    std::lock_guard lk(m_);
    return triggers_;
  }
  [[nodiscard]] std::size_t triggerTotal() const {
    std::lock_guard lk(m_);
    return triggers_.size();
  }

 private:
  template <typename Pred>
  FaultSpec* match(FaultKind kind, Cycle now, Pred&& pred) {
    for (FaultSpec& s : specs_) {
      if (s.kind != kind || !pred(s)) continue;
      if (now < s.at_cycle) continue;
      if (s.until_cycle != 0 && now > s.until_cycle) continue;
      if (s.count == 0 || spent_of(s) < s.count) return &s;
    }
    return nullptr;
  }

  // Trigger budgets are tracked per spec by address: specs_ only grows
  // (clear() resets everything), so the parallel spent vector stays aligned.
  std::uint32_t& spent_ref(FaultSpec& s) {
    const auto idx = static_cast<std::size_t>(&s - specs_.data());
    if (spent_.size() < specs_.size()) spent_.resize(specs_.size(), 0);
    return spent_[idx];
  }
  std::uint32_t spent_of(FaultSpec& s) { return spent_ref(s); }
  void consume(FaultSpec& s) { ++spent_ref(s); }

  mutable std::mutex m_;  ///< serializes the hooks against lane-thread concurrency
  std::vector<FaultSpec> specs_;
  std::vector<std::uint32_t> spent_;
  std::vector<FaultTrigger> triggers_;
};

}  // namespace eclipse::sim
