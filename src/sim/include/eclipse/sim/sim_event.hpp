#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <vector>

#include "eclipse/sim/simulator.hpp"

namespace eclipse::sim {

/// Condition-variable-like wake-up point for simulation coroutines.
///
/// A process co_awaits `event.wait()`; another process calls notifyAll() /
/// notifyOne(). Woken coroutines resume as zero-delay events, i.e. later in
/// the same cycle, never re-entrantly inside the notifier. As with condition
/// variables, waiters must re-check their predicate after waking.
class SimEvent {
 public:
  explicit SimEvent(Simulator& sim) : sim_(&sim) {}

  struct Awaiter {
    SimEvent& ev;
    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter wait() { return Awaiter{*this}; }

  void notifyAll() {
    for (auto h : waiters_) {
      sim_->scheduleResume(0, h);
    }
    waiters_.clear();
  }

  void notifyOne() {
    if (waiters_.empty()) return;
    auto h = waiters_.front();
    waiters_.pop_front();
    sim_->scheduleResume(0, h);
  }

  [[nodiscard]] std::size_t waiterCount() const { return waiters_.size(); }

  /// Forgets all parked waiters without resuming them. Only sound right
  /// after the owning simulator's destroyProcesses(): the recorded handles
  /// point into destroyed coroutine frames then, and recycling the event
  /// for a fresh set of processes must not resume them.
  void clearWaiters() { waiters_.clear(); }

 private:
  Simulator* sim_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore with FIFO wake order.
///
/// Used for mutual exclusion and for modelling single-resource arbitration
/// (e.g. a bus grants requests in arrival order). release() hands ownership
/// directly to the oldest waiter, so the resource is never stolen by a
/// late-arriving requester in the same cycle.
class Semaphore {
 public:
  Semaphore(Simulator& sim, std::uint32_t initial) : sim_(&sim), count_(initial) {}

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (sem.count_ > 0) {
        --sem.count_;
        return false;  // acquired without suspension
      }
      sem.waiters_.push_back(h);
      return true;
    }
    void await_resume() const noexcept {}
  };

  [[nodiscard]] Awaiter acquire() { return Awaiter{*this}; }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_->scheduleResume(0, h);
    } else {
      ++count_;
    }
  }

  [[nodiscard]] std::uint32_t available() const { return count_; }
  [[nodiscard]] std::size_t waiterCount() const { return waiters_.size(); }

 private:
  Simulator* sim_;
  std::uint32_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// RAII guard for a Semaphore used as a mutex. Acquire with
/// `co_await sem.acquire()`, then construct the guard to release on scope
/// exit (coroutine frames honour destructors across suspensions).
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(&sem) {}
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  ~SemaphoreGuard() {
    if (sem_ != nullptr) sem_->release();
  }

 private:
  Semaphore* sem_;
};

}  // namespace eclipse::sim
