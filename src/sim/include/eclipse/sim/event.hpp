#pragma once

#include <coroutine>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace eclipse::sim {

/// Allocation-free simulation event.
///
/// The kernel dispatches two kinds of work: resuming a suspended coroutine
/// (the dominant case — Delay, SimEvent, Semaphore all wake processes this
/// way) and invoking a callback (message delivery, test hooks). A
/// `std::function` would heap-allocate for almost every capture list, so
/// Event instead stores one of:
///   * a bare `std::coroutine_handle<>` — one pointer, no allocation,
///   * a small trivially-copyable callable, inline in the event itself,
///   * a heap-allocated holder, only for large or non-trivial callables.
///
/// Events are move-only and single-shot: invoke with `operator()`.
class Event {
 public:
  /// Callables at most this large (and trivially copyable/destructible)
  /// are stored inline. Sized so Event fills one cache line.
  static constexpr std::size_t kInlineBytes = 48;

  Event() noexcept : tag_(Tag::kEmpty) {}

  /// Coroutine fast path: resuming `h` is the event.
  Event(std::coroutine_handle<> h) noexcept : tag_(Tag::kCoroutine) {
    payload_.coro = h.address();
  }

  /// Generic callable. Small trivially-copyable callables (the common
  /// lambda capturing a pointer or a few scalars) are stored inline;
  /// anything else falls back to a single heap allocation.
  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, Event> &&
             !std::is_convertible_v<F, std::coroutine_handle<>> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  Event(F&& fn) {  // NOLINT(bugprone-forwarding-reference-overload)
    using Fn = std::decay_t<F>;
    if constexpr (fitsInline<Fn>()) {
      ::new (static_cast<void*>(payload_.inline_storage)) Fn(std::forward<F>(fn));
      invoke_ = [](Payload& p) { (*std::launder(reinterpret_cast<Fn*>(p.inline_storage)))(); };
      tag_ = Tag::kInline;
    } else {
      payload_.heap = new HeapHolder<Fn>(std::forward<F>(fn));
      tag_ = Tag::kHeap;
    }
  }

  Event(Event&& other) noexcept
      : payload_(other.payload_), invoke_(other.invoke_), tag_(other.tag_) {
    other.tag_ = Tag::kEmpty;
  }

  Event& operator=(Event&& other) noexcept {
    if (this != &other) {
      reset();
      payload_ = other.payload_;
      invoke_ = other.invoke_;
      tag_ = other.tag_;
      other.tag_ = Tag::kEmpty;
    }
    return *this;
  }

  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  ~Event() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return tag_ != Tag::kEmpty; }

  /// True when invoking resumes a coroutine (no indirect call needed).
  [[nodiscard]] bool isCoroutine() const noexcept { return tag_ == Tag::kCoroutine; }

  void operator()() {
    switch (tag_) {
      case Tag::kCoroutine:
        std::coroutine_handle<>::from_address(payload_.coro).resume();
        break;
      case Tag::kInline:
        invoke_(payload_);
        break;
      case Tag::kHeap:
        payload_.heap->invoke();
        break;
      case Tag::kEmpty:
        break;
    }
  }

 private:
  enum class Tag : unsigned char { kEmpty, kCoroutine, kInline, kHeap };

  struct HeapHolderBase {
    virtual void invoke() = 0;
    virtual ~HeapHolderBase() = default;
  };
  template <typename Fn>
  struct HeapHolder final : HeapHolderBase {
    explicit HeapHolder(Fn f) : fn(std::move(f)) {}
    void invoke() override { fn(); }
    Fn fn;
  };

  union Payload {
    void* coro;
    HeapHolderBase* heap;
    alignas(std::max_align_t) unsigned char inline_storage[kInlineBytes];
  };

  template <typename Fn>
  static constexpr bool fitsInline() {
    // Inline events are relocated with a raw copy when a bucket's vector
    // grows and dropped without running destructors on clear(), so the
    // inline path is restricted to trivially copyable/destructible types.
    return sizeof(Fn) <= kInlineBytes && alignof(Fn) <= alignof(Payload) &&
           std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;
  }

  void reset() noexcept {
    if (tag_ == Tag::kHeap) delete payload_.heap;
    tag_ = Tag::kEmpty;
  }

  Payload payload_;
  void (*invoke_)(Payload&) = nullptr;  // set for Tag::kInline only
  Tag tag_;
};

}  // namespace eclipse::sim
