#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace eclipse::sim {

/// Architectural setup file, as used for design-space exploration.
///
/// The paper (Section 7) drives the simulator from a setup file holding
/// architecture parameters (cache sizes, bus latency/width, ...). Format:
///
///     # comment
///     [bus]
///     width_bytes = 16
///     latency     = 3
///
/// Keys are addressed as "section.key"; keys before any section header have
/// no prefix. Values are stored as strings and converted on access.
class Config {
 public:
  Config() = default;

  /// Parses setup-file text. Throws std::runtime_error on malformed lines.
  static Config fromString(std::string_view text);

  /// Loads a setup file from disk. Throws std::runtime_error on I/O errors.
  static Config fromFile(const std::string& path);

  void set(const std::string& key, std::string value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, double value);
  void set(const std::string& key, bool value);

  [[nodiscard]] bool has(const std::string& key) const;

  /// Typed getters; return `fallback` when the key is absent and throw
  /// std::runtime_error when the value does not parse as the requested type.
  [[nodiscard]] std::string getString(const std::string& key, std::string fallback = {}) const;
  [[nodiscard]] std::int64_t getInt(const std::string& key, std::int64_t fallback = 0) const;
  [[nodiscard]] double getDouble(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] bool getBool(const std::string& key, bool fallback = false) const;

  /// All keys in lexicographic order (for dumping / diffing setups).
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serialises back to setup-file text (flat, fully-qualified keys).
  [[nodiscard]] std::string toString() const;

  /// Merges `other` into this config; keys in `other` win.
  void merge(const Config& other);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace eclipse::sim
