#pragma once

#include <coroutine>
#include <exception>
#include <optional>
#include <string>
#include <utility>

namespace eclipse::sim {

class Simulator;

namespace detail {

/// State shared by all Task promises, independent of the result type.
///
/// `continuation` is the coroutine awaiting this task (symmetric transfer on
/// completion). For a *root* process spawned directly on the simulator there
/// is no continuation; instead `root_sim` is set and the simulator is
/// notified on completion so that unhandled exceptions surface from run().
struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  Simulator* root_sim = nullptr;

  std::suspend_always initial_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

void notifyRootDone(Simulator& sim, std::exception_ptr exception);

struct FinalAwaiter {
  bool await_ready() const noexcept { return false; }

  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    PromiseBase& p = h.promise();
    if (p.continuation) return p.continuation;
    if (p.root_sim != nullptr) notifyRootDone(*p.root_sim, p.exception);
    return std::noop_coroutine();
  }

  void await_resume() const noexcept {}
};

}  // namespace detail

/// Lazily-started coroutine task integrated with the simulation kernel.
///
/// A Task<T> models a thread of control in the simulated hardware: a
/// coprocessor program, a shell primitive handler, a bus transaction. Tasks
/// compose by `co_await`ing each other; simulated time passes only through
/// awaitables that go via the Simulator (Delay, SimEvent, Semaphore), so a
/// chain of nested tasks with no delays completes in zero simulated cycles.
///
/// Ownership: the Task object owns the coroutine frame and destroys it when
/// the Task goes out of scope. When used as `co_await child()`, the
/// temporary Task lives until the awaiting full-expression resumes, which is
/// exactly the child's lifetime.
template <typename T>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value.emplace(std::move(v)); }
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] handle_type handle() const { return h_; }
  [[nodiscard]] bool done() const { return !h_ || h_.done(); }

  /// Releases ownership of the coroutine frame to the caller.
  handle_type release() { return std::exchange(h_, nullptr); }

  // Awaiter protocol: `co_await task` starts the child and resumes the
  // caller when the child completes.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  T await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
    return std::move(*h_.promise().value);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  handle_type h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    detail::FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
  };

  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& other) noexcept : h_(std::exchange(other.h_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      h_ = std::exchange(other.h_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] handle_type handle() const { return h_; }
  [[nodiscard]] bool done() const { return !h_ || h_.done(); }
  handle_type release() { return std::exchange(h_, nullptr); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) noexcept {
    h_.promise().continuation = cont;
    return h_;
  }
  void await_resume() {
    if (h_.promise().exception) std::rethrow_exception(h_.promise().exception);
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  handle_type h_{};
};

}  // namespace eclipse::sim
