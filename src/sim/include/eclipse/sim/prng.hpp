#pragma once

#include <cstdint>

namespace eclipse::sim {

/// Deterministic, seedable pseudo-random generator (xoshiro256++).
///
/// The simulator never uses std::random_device or wall-clock entropy: every
/// experiment must be reproducible bit-for-bit from its seed. The generator
/// satisfies the std uniform_random_bit_generator concept so it can be used
/// with <random> distributions when convenient.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialises state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& s : state_) {
      // splitmix64 step
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return (*this)() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace eclipse::sim
