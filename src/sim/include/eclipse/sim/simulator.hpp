#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/event.hpp"
#include "eclipse/sim/event_queue.hpp"
#include "eclipse/sim/shard.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::sim {

class FaultInjector;

/// Deterministic, event-driven cycle-level simulator.
///
/// The kernel is purely event-driven: hardware blocks (shells, buses,
/// memories, coprocessors) are modelled as coroutine processes that await
/// Delay / SimEvent / Semaphore awaitables. Events scheduled for the same
/// cycle run in scheduling order, so a given model and seed always produce
/// the same trace.
///
/// Two execution kernels sit behind this one interface:
///   * the serial oracle (the default, shardCount() == 1): one timing wheel,
///     one thread, exactly the historical kernel — bit-identical to every
///     prior release;
///   * the sharded conservative-PDES engine (setShardCount(N >= 2)): N
///     ShardSchedulers each owning a private wheel, synchronized in barrier
///     windows sized by the minimum declared cross-shard latency. See
///     shard.hpp for the protocol and the determinism argument.
///
/// Threading contract: **one driving thread per Simulator**. run() is called
/// from a single thread; in sharded mode the engine manages its own worker
/// team internally, and models must respect shard affinity (everything a
/// semaphore/bus couples tightly must live on one shard — the app-layer
/// partitioner enforces this with its fusion rule). Concurrency across
/// *independent* Simulators on separate threads remains safe as before (the
/// eclipse_farm worker pool does exactly this), and composes with in-run
/// sharding under one thread budget.
class Simulator {
 public:
  static constexpr Cycle kForever = std::numeric_limits<Cycle>::max();

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated cycle: the executing lane's cycle from inside an
  /// event, the global (coordinator) cycle otherwise.
  [[nodiscard]] Cycle now() const { return engine_ ? engine_->now() : now_; }

  /// Schedules an event `delay` cycles from now. Accepts anything an Event
  /// can hold: a coroutine handle (allocation-free fast path) or a callable
  /// (stored inline when small and trivially copyable). In sharded mode the
  /// event lands on the executing lane (shard 0 from outside execution).
  void schedule(Cycle delay, Event ev) {
    if (engine_) {
      engine_->schedule(delay, std::move(ev));
      return;
    }
    queue_.push(now_ + delay, std::move(ev));
  }

  /// Schedules an event at an absolute cycle (must be >= now()).
  void scheduleAt(Cycle at, Event ev) {
    if (engine_) {
      engine_->scheduleAt(at, std::move(ev));
      return;
    }
    queue_.push(at < now_ ? now_ : at, std::move(ev));
  }

  /// Fast path: schedules the resumption of a suspended coroutine `delay`
  /// cycles from now. No type erasure, no allocation — the handle is the
  /// event.
  void scheduleResume(Cycle delay, std::coroutine_handle<> h) {
    if (engine_) {
      engine_->schedule(delay, Event(h));
      return;
    }
    queue_.push(now_ + delay, Event(h));
  }

  /// Awaitable that suspends the calling coroutine for `n` cycles.
  /// A zero-cycle delay completes immediately without suspending.
  struct DelayAwaiter {
    Simulator& sim;
    Cycle n;
    bool await_ready() const noexcept { return n == 0; }
    void await_suspend(std::coroutine_handle<> h) { sim.scheduleResume(n, h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DelayAwaiter delay(Cycle n) { return DelayAwaiter{*this, n}; }

  /// Registers a root process. The process starts at the current cycle (as
  /// a zero-delay event) and its coroutine frame is owned by the simulator.
  /// `shard` selects the owning lane in sharded mode (kAutoShard: the
  /// executing lane from inside an event, shard 0 otherwise) and is ignored
  /// by the serial kernel.
  void spawn(Task<void> task, std::string name = "process", ShardId shard = kAutoShard);

  /// Runs until the event queue drains or simulated time passes `until`.
  /// Returns the cycle at which the run stopped. Rethrows the first
  /// unhandled exception from any root process (in sharded mode: the
  /// earliest by (cycle, shard) across lanes).
  Cycle run(Cycle until = kForever);

  /// Requests run() to return after the current event completes. In sharded
  /// mode the stop is lane-local-immediate: sibling lanes finish the open
  /// window (bounded by the lookahead) before run() returns.
  void stop() {
    if (engine_) {
      engine_->stop();
      return;
    }
    stop_requested_ = true;
  }

  /// True when no events are pending (all processes blocked or finished).
  [[nodiscard]] bool quiescent() const {
    return engine_ ? engine_->quiescent() : queue_.empty();
  }

  /// Number of spawned root processes that have not yet completed.
  [[nodiscard]] std::size_t liveProcesses() const {
    return engine_ ? engine_->liveProcesses() : live_;
  }

  /// Destroys all coroutine frames and drops pending events.
  ///
  /// Coroutine frames may hold RAII objects (e.g. bus-arbitration guards)
  /// that reference simulation models; owners whose models are destroyed
  /// before the Simulator member must call this first so frame unwinding
  /// never touches freed models. Idempotent; the destructor calls it too.
  void destroyProcesses();

  /// Total events dispatched so far (for sanity checks and profiling).
  /// Sharded mode sums the per-lane counters — each dispatched event is
  /// counted exactly once, so the total matches the serial oracle on
  /// equivalent runs.
  [[nodiscard]] std::uint64_t eventsDispatched() const {
    return engine_ ? engine_->eventsDispatched() : events_;
  }

  // --- sharding -----------------------------------------------------------

  /// Switches the kernel to N conservative-PDES shards (N >= 2) or back to
  /// the serial oracle (N <= 1). Must be called on a pristine simulator —
  /// before any spawn or schedule — so every event's home lane is
  /// well-defined from the start.
  void setShardCount(std::uint32_t shards);
  [[nodiscard]] std::uint32_t shardCount() const {
    return engine_ ? engine_->shardCount() : 1;
  }
  [[nodiscard]] bool sharded() const { return engine_ != nullptr; }

  /// Shard executing on this thread (0 outside execution or when serial).
  [[nodiscard]] ShardId currentShard() const {
    return engine_ ? engine_->currentShard() : 0;
  }

  /// Declares a modeled cross-shard latency; the engine's conservative
  /// lookahead is the minimum declared value. No-op when serial.
  void declareCrossShardLatency(Cycle latency) {
    if (engine_) engine_->declareCrossLatency(latency);
  }
  [[nodiscard]] Cycle crossShardLookahead() const {
    return engine_ ? engine_->lookahead() : 0;
  }

  /// Schedules onto an explicit shard. From inside a window targeting a
  /// remote lane this is a cross-shard injection and the delay must be >=
  /// the declared lookahead (std::logic_error otherwise). Serial mode
  /// ignores the shard and schedules locally.
  void scheduleOnShard(ShardId shard, Cycle delay, Event ev) {
    if (engine_) {
      engine_->scheduleOn(shard, delay, std::move(ev));
      return;
    }
    queue_.push(now_ + delay, std::move(ev));
  }

  /// Debug guard for shard-affine resources (buses, MMIO windows): throws
  /// std::logic_error when called from a lane other than `home`. Outside
  /// window execution (setup, control plane between runs) it never fires.
  void assertOnShard(ShardId home, const char* what) const;

  /// Wall-clock jitter for determinism stress tests; forwarded to the
  /// engine. 0 (default) disables. No-op when serial.
  void setShardJitter(std::uint64_t seed) {
    if (engine_) engine_->setJitter(seed);
  }

  /// Per-lane / channel counters; nullopt-equivalent (empty stats) when
  /// serial. See ShardStats.
  [[nodiscard]] ShardStats shardStats() const {
    return engine_ ? engine_->snapshotStats() : ShardStats{};
  }
  [[nodiscard]] ShardEngine* shardEngine() const { return engine_.get(); }

  /// Verbosity: 0 silent, 1 info, 2 debug. trace() writes to stderr when
  /// level <= verbosity.
  void setVerbosity(int v) { verbosity_ = v; }
  [[nodiscard]] int verbosity() const { return verbosity_; }
  void trace(int level, std::string_view msg) const;

  /// Fault-injection hook. Null (the default) means no faults: models guard
  /// every query with a branch-on-null, so the unarmed path costs nothing
  /// and schedules nothing. The injector is owned by the caller (typically
  /// an app::EclipseInstance) and must outlive the simulation.
  void setFaultInjector(FaultInjector* inj) { faults_ = inj; }
  [[nodiscard]] FaultInjector* faults() const { return faults_; }

 private:
  friend void detail::notifyRootDone(Simulator& sim, std::exception_ptr exception);

  struct RootProcess {
    std::string name;
    Task<void>::handle_type handle;
  };

  Cycle now_ = 0;
  EventQueue queue_;
  std::vector<RootProcess> roots_;
  std::size_t live_ = 0;
  std::uint64_t events_ = 0;
  bool stop_requested_ = false;
  int verbosity_ = 0;
  std::exception_ptr pending_error_;
  FaultInjector* faults_ = nullptr;
  std::unique_ptr<ShardEngine> engine_;
};

}  // namespace eclipse::sim
