#pragma once

#include <coroutine>
#include <cstdint>
#include <exception>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/event.hpp"
#include "eclipse/sim/event_queue.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::sim {

class FaultInjector;

/// Single-threaded, deterministic, event-driven cycle-level simulator.
///
/// The kernel is purely event-driven: hardware blocks (shells, buses,
/// memories, coprocessors) are modelled as coroutine processes that await
/// Delay / SimEvent / Semaphore awaitables. Events scheduled for the same
/// cycle run in scheduling order, so a given model and seed always produce
/// the same trace.
///
/// Threading contract: **one thread per Simulator**. A Simulator and every
/// model attached to it (shells, memories, buses, coprocessors, the
/// instance that owns them) must be driven from a single thread; nothing
/// here takes locks. Concurrency is achieved by running *independent*
/// Simulators on separate threads (the eclipse_farm worker pool does
/// exactly this): the kernel has no global mutable state, so N private
/// simulators on N threads are safe and each stays bit-deterministic.
/// Shared read-only inputs (e.g. a prepared workload's bitstream) may be
/// referenced from several simulators; anything mutable must be private.
class Simulator {
 public:
  static constexpr Cycle kForever = std::numeric_limits<Cycle>::max();

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;
  ~Simulator();

  /// Current simulated cycle.
  [[nodiscard]] Cycle now() const { return now_; }

  /// Schedules an event `delay` cycles from now. Accepts anything an Event
  /// can hold: a coroutine handle (allocation-free fast path) or a callable
  /// (stored inline when small and trivially copyable).
  void schedule(Cycle delay, Event ev) { queue_.push(now_ + delay, std::move(ev)); }

  /// Schedules an event at an absolute cycle (must be >= now()).
  void scheduleAt(Cycle at, Event ev) {
    queue_.push(at < now_ ? now_ : at, std::move(ev));
  }

  /// Fast path: schedules the resumption of a suspended coroutine `delay`
  /// cycles from now. No type erasure, no allocation — the handle is the
  /// event.
  void scheduleResume(Cycle delay, std::coroutine_handle<> h) {
    queue_.push(now_ + delay, Event(h));
  }

  /// Awaitable that suspends the calling coroutine for `n` cycles.
  /// A zero-cycle delay completes immediately without suspending.
  struct DelayAwaiter {
    Simulator& sim;
    Cycle n;
    bool await_ready() const noexcept { return n == 0; }
    void await_suspend(std::coroutine_handle<> h) { sim.scheduleResume(n, h); }
    void await_resume() const noexcept {}
  };
  [[nodiscard]] DelayAwaiter delay(Cycle n) { return DelayAwaiter{*this, n}; }

  /// Registers a root process. The process starts at the current cycle (as
  /// a zero-delay event) and its coroutine frame is owned by the simulator.
  void spawn(Task<void> task, std::string name = "process");

  /// Runs until the event queue drains or simulated time passes `until`.
  /// Returns the cycle at which the run stopped. Rethrows the first
  /// unhandled exception from any root process.
  Cycle run(Cycle until = kForever);

  /// Requests run() to return after the current event completes.
  void stop() { stop_requested_ = true; }

  /// True when no events are pending (all processes blocked or finished).
  [[nodiscard]] bool quiescent() const { return queue_.empty(); }

  /// Number of spawned root processes that have not yet completed.
  [[nodiscard]] std::size_t liveProcesses() const { return live_; }

  /// Destroys all coroutine frames and drops pending events.
  ///
  /// Coroutine frames may hold RAII objects (e.g. bus-arbitration guards)
  /// that reference simulation models; owners whose models are destroyed
  /// before the Simulator member must call this first so frame unwinding
  /// never touches freed models. Idempotent; the destructor calls it too.
  void destroyProcesses();

  /// Total events dispatched so far (for sanity checks and profiling).
  [[nodiscard]] std::uint64_t eventsDispatched() const { return events_; }

  /// Verbosity: 0 silent, 1 info, 2 debug. trace() writes to stderr when
  /// level <= verbosity.
  void setVerbosity(int v) { verbosity_ = v; }
  [[nodiscard]] int verbosity() const { return verbosity_; }
  void trace(int level, std::string_view msg) const;

  /// Fault-injection hook. Null (the default) means no faults: models guard
  /// every query with a branch-on-null, so the unarmed path costs nothing
  /// and schedules nothing. The injector is owned by the caller (typically
  /// an app::EclipseInstance) and must outlive the simulation.
  void setFaultInjector(FaultInjector* inj) { faults_ = inj; }
  [[nodiscard]] FaultInjector* faults() const { return faults_; }

 private:
  friend void detail::notifyRootDone(Simulator& sim, std::exception_ptr exception);

  struct RootProcess {
    std::string name;
    Task<void>::handle_type handle;
  };

  Cycle now_ = 0;
  EventQueue queue_;
  std::vector<RootProcess> roots_;
  std::size_t live_ = 0;
  std::uint64_t events_ = 0;
  bool stop_requested_ = false;
  int verbosity_ = 0;
  std::exception_ptr pending_error_;
  FaultInjector* faults_ = nullptr;
};

}  // namespace eclipse::sim
