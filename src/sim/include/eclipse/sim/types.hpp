#pragma once

#include <cstdint>

/// Basic scalar types shared by all Eclipse simulation modules.
namespace eclipse::sim {

/// Simulated clock cycle count. All timing in the simulator is expressed in
/// cycles of the subsystem clock (the paper's instance targets 150 MHz for
/// the coprocessors; the value of a cycle in wall-clock terms is irrelevant
/// to the model).
using Cycle = std::uint64_t;

/// Byte address into one of the simulated memories.
using Addr = std::uint64_t;

/// Identifier of a task slot in a shell's task table (paper: task_id).
using TaskId = std::int32_t;

/// Identifier of a task port (paper: port_id). Port ids are local to a task.
using PortId = std::int32_t;

/// Sentinel returned by GetTask when no task is runnable right now.
inline constexpr TaskId kNoTask = -1;

}  // namespace eclipse::sim
