#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "eclipse/sim/event.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::sim {

/// Time-ordered queue of simulation events.
///
/// Two-level scheduler tuned for the kernel's access pattern (almost all
/// delays are short: handshakes, bus bursts, scheduler budgets):
///   * a power-of-two ring of per-cycle buckets (a timing wheel) covering
///     the next `kWheelSpan` cycles — push and pop are O(1) plus a word-wise
///     occupancy-bitmap scan to find the next busy cycle,
///   * an overflow min-heap for events beyond the wheel horizon; entries
///     migrate into the wheel when the window advances past them.
///
/// Events at the same cycle execute in insertion order (FIFO), which keeps
/// the simulation deterministic regardless of container internals. The
/// FIFO guarantee holds across the bucket/heap boundary: far-future events
/// migrate into their bucket the moment the window reaches them, i.e.
/// before any later push to the same cycle can land there.
class EventQueue {
 public:
  /// Cycles covered by the wheel ahead of the current window base. Chosen
  /// to cover the common delay range (latencies, bursts, task budgets) so
  /// the overflow heap only sees rare long timers.
  static constexpr std::size_t kWheelBits = 12;
  static constexpr Cycle kWheelSpan = Cycle{1} << kWheelBits;

  EventQueue() : wheel_(kWheelSpan) { bitmap_.fill(0); }

  /// Schedules `ev` at absolute cycle `at`. Cycles before the window base
  /// (only reachable through direct queue use — the Simulator clamps to
  /// `now()`) fire at the earliest pending opportunity.
  void push(Cycle at, Event ev) {
    if (at < base_) at = base_;
    if (at - base_ < kWheelSpan) {
      const std::size_t idx = bucketIndex(at);
      wheel_[idx].items.push_back(std::move(ev));
      markOccupied(idx);
      ++wheel_count_;
    } else {
      overflow_.push_back(Far{at, seq_++, std::move(ev)});
      std::push_heap(overflow_.begin(), overflow_.end(), FarLater{});
    }
    if (next_valid_ && at < next_cycle_) next_cycle_ = at;
    ++size_;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Cycle of the earliest pending event. Undefined when empty. Cached:
  /// repeated calls while draining a cycle cost one comparison, not a
  /// bitmap scan.
  [[nodiscard]] Cycle nextCycle() const {
    if (!next_valid_) {
      next_cycle_ = wheel_count_ > 0 ? scanWheel() : overflow_.front().at;
      next_valid_ = true;
    }
    return next_cycle_;
  }

  /// Removes and returns the earliest pending event. Undefined when empty.
  Event pop(Cycle* at = nullptr) {
    const Cycle c = nextCycle();
    if (at != nullptr) *at = c;
    --size_;
    if (wheel_count_ == 0) {
      // Window jump: everything pending sits in the overflow heap. Serve
      // the top directly instead of routing it through a bucket. FIFO is
      // preserved: same-cycle peers carry larger seq values, so they sort
      // behind the top and migrate into the bucket afterwards.
      std::pop_heap(overflow_.begin(), overflow_.end(), FarLater{});
      Far f = std::move(overflow_.back());
      overflow_.pop_back();
      advanceTo(f.at);
      next_valid_ = false;
      return std::move(f.ev);
    }
    if (c > base_) advanceTo(c);  // migrate far events that now fit
    const std::size_t idx = bucketIndex(c);
    Bucket& b = wheel_[idx];
    Event ev = std::move(b.items[b.head]);
    if (++b.head == b.items.size()) {
      b.items.clear();
      b.head = 0;
      clearOccupied(idx);
      next_valid_ = false;  // this cycle is drained; rescan on next query
    }
    --wheel_count_;
    return ev;
  }

  /// Drops every pending event (used during simulator teardown so no
  /// scheduled resume outlives its coroutine frame). Bucket capacity is
  /// retained for reuse.
  void clear() {
    if (size_ == 0) return;
    for (auto& b : wheel_) {
      b.items.clear();
      b.head = 0;
    }
    bitmap_.fill(0);
    summary_ = 0;
    overflow_.clear();
    wheel_count_ = 0;
    size_ = 0;
    next_valid_ = false;
  }

 private:
  struct Bucket {
    std::vector<Event> items;  // FIFO for one cycle; head marks the drain point
    std::size_t head = 0;
  };
  struct Far {
    Cycle at;
    std::uint64_t seq;
    Event ev;
  };
  struct FarLater {
    bool operator()(const Far& a, const Far& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  static constexpr std::size_t kMask = kWheelSpan - 1;
  static constexpr std::size_t kWords = kWheelSpan / 64;

  [[nodiscard]] static std::size_t bucketIndex(Cycle at) {
    return static_cast<std::size_t>(at) & kMask;
  }

  // kWords == 64 lets a single summary word (one bit per bitmap word) make
  // the next-busy-cycle scan O(1) regardless of how sparse the wheel is.
  static_assert(kWords == 64);

  void markOccupied(std::size_t idx) {
    bitmap_[idx >> 6] |= std::uint64_t{1} << (idx & 63);
    summary_ |= std::uint64_t{1} << (idx >> 6);
  }
  void clearOccupied(std::size_t idx) {
    const std::size_t w = idx >> 6;
    bitmap_[w] &= ~(std::uint64_t{1} << (idx & 63));
    if (bitmap_[w] == 0) summary_ &= ~(std::uint64_t{1} << w);
  }

  /// Earliest occupied cycle within the window. Requires wheel_count_ > 0.
  [[nodiscard]] Cycle scanWheel() const {
    const std::size_t start = bucketIndex(base_);
    std::size_t word = start >> 6;
    // First word: only bits at/after the window base count as-is; earlier
    // bits belong to the far end of the window and are caught on wrap.
    std::uint64_t bits = bitmap_[word] & (~std::uint64_t{0} << (start & 63));
    if (bits == 0) {
      // Jump straight to the next occupied word via the summary, rotated
      // so that the word after `word` sits at bit 0. If the search wraps
      // all the way back to the start word, its low (wrapped) bits are the
      // hit — the high bits were just checked and are zero.
      const std::size_t from = (word + 1) & (kWords - 1);
      const std::uint64_t rot = std::rotr(summary_, static_cast<int>(from));
      word = (from + static_cast<std::size_t>(std::countr_zero(rot))) & (kWords - 1);
      bits = bitmap_[word];
    }
    const std::size_t idx = (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    return base_ + static_cast<Cycle>((idx - start) & kMask);
  }

  /// Advances the window base to `c` (the new earliest pending cycle),
  /// pulling newly-reachable overflow entries into their buckets. Window
  /// advancement happens only inside pop(), which migrates before
  /// returning control — so migration always precedes any later same-cycle
  /// push, preserving cross-boundary FIFO order.
  void advanceTo(Cycle c) {
    base_ = c;
    const Cycle horizon = base_ + kWheelSpan;
    while (!overflow_.empty() && overflow_.front().at < horizon) {
      std::pop_heap(overflow_.begin(), overflow_.end(), FarLater{});
      Far f = std::move(overflow_.back());
      overflow_.pop_back();
      const std::size_t idx = bucketIndex(f.at);
      wheel_[idx].items.push_back(std::move(f.ev));
      markOccupied(idx);
      ++wheel_count_;
    }
  }

  std::vector<Bucket> wheel_;
  std::array<std::uint64_t, kWords> bitmap_;
  std::uint64_t summary_ = 0;  // bit w set iff bitmap_[w] != 0
  std::vector<Far> overflow_;  // min-heap on (at, seq) via std::*_heap
  Cycle base_ = 0;             // window start: no pending event is earlier
  std::uint64_t seq_ = 0;      // orders same-cycle overflow entries
  std::size_t wheel_count_ = 0;
  std::size_t size_ = 0;
  mutable Cycle next_cycle_ = 0;     // cached earliest pending cycle
  mutable bool next_valid_ = false;  // push keeps it monotone; pop refreshes
};

}  // namespace eclipse::sim
