#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "eclipse/sim/types.hpp"

namespace eclipse::sim {

/// Time-ordered queue of simulation callbacks.
///
/// Events at the same cycle execute in insertion order (FIFO), which keeps
/// the simulation deterministic regardless of heap internals.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  void push(Cycle at, Callback cb) {
    heap_.push(Entry{at, seq_++, std::move(cb)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }

  /// Drops every pending callback (used during simulator teardown so no
  /// scheduled resume outlives its coroutine frame).
  void clear() { heap_ = {}; }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Cycle of the earliest pending event. Undefined when empty.
  [[nodiscard]] Cycle nextCycle() const { return heap_.top().at; }

  /// Removes and returns the earliest pending callback.
  Callback pop(Cycle* at = nullptr) {
    // priority_queue::top() is const; the callback must be moved out, which
    // is safe because we pop immediately afterwards.
    Entry& top = const_cast<Entry&>(heap_.top());
    Callback cb = std::move(top.cb);
    if (at != nullptr) *at = top.at;
    heap_.pop();
    return cb;
  }

 private:
  struct Entry {
    Cycle at;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace eclipse::sim
