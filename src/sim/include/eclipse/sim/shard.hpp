#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "eclipse/sim/coro.hpp"
#include "eclipse/sim/event.hpp"
#include "eclipse/sim/event_queue.hpp"
#include "eclipse/sim/types.hpp"

namespace eclipse::sim {

class Simulator;

/// Identifies one shard (lane) of a sharded simulation. Shard 0 is the
/// default lane: anything scheduled from outside event execution (setup
/// code, the control plane between runs) lands there unless routed
/// explicitly.
using ShardId = std::uint32_t;

/// Sentinel for spawn(): pick the shard automatically — the lane currently
/// executing when called from inside an event (e.g. a cache-prefetch process
/// spawned mid-run inherits its parent's lane), shard 0 otherwise.
inline constexpr ShardId kAutoShard = std::numeric_limits<ShardId>::max();

/// Per-shard scheduler: the PR-1 two-level timing wheel plus the lane-local
/// run state that used to live directly in the Simulator. Each shard owns
/// one of these privately; nothing in here is shared, so a lane executes its
/// window without touching another lane's cache lines (hence the alignment).
struct alignas(64) ShardScheduler {
  struct Root {
    std::string name;
    Task<void>::handle_type handle;
  };

  EventQueue wheel;            ///< private event queue for this shard
  Cycle now = 0;               ///< cycle of the last event executed here
  std::uint64_t events = 0;    ///< events dispatched on this lane
  std::vector<Root> roots;     ///< coroutine frames owned by this lane
  std::size_t live = 0;        ///< spawned-but-unfinished root processes
  bool stop_requested = false; ///< lane-local stop latch
  std::exception_ptr error;    ///< first error raised on this lane
  Cycle error_cycle = 0;       ///< cycle at which `error` was raised
  ShardId id = 0;

  /// Sweeps finished coroutine frames (same policy as the serial spawn path)
  /// so long runs with many short-lived processes stay bounded.
  void reclaimFinishedRoots();

  /// Destroys every owned frame. The wheel must already be cleared: pending
  /// events may capture handles into these frames.
  void destroyRoots();
};

namespace detail {
struct CrossEvent {
  Cycle at;
  Event ev;
};
}  // namespace detail

/// One directed inter-shard mailbox (src lane -> dst lane). Bounded with
/// overflow accounting: kChannelBound is the reserved capacity; pushes
/// beyond it still succeed (the vector grows) but are counted, so a plan
/// whose channels blow their bound is visible in the stats instead of
/// deadlocking the conservative loop.
///
/// Thread safety is by phase separation, not locks: only the src lane's
/// runner writes during window execution, and only the coordinator drains at
/// the barrier. The round barrier (mutex + condvar) provides the
/// happens-before edge between the two phases.
struct ShardChannel {
  std::vector<detail::CrossEvent> buf;
  std::uint64_t pushed = 0;
  std::uint64_t high_water = 0;
  std::uint64_t overflows = 0;
};

/// Counters exposed for benches, graph_dump and tests.
struct ShardStats {
  std::uint64_t rounds = 0;           ///< barrier windows executed
  std::uint64_t parallel_rounds = 0;  ///< windows with >1 active lane
  std::uint64_t cross_events = 0;     ///< events routed through channels
  std::uint64_t channel_overflows = 0;
  std::uint64_t channel_high_water = 0;
  Cycle lookahead = 0;
  std::vector<std::uint64_t> lane_events;
  std::vector<std::size_t> lane_live;
};

/// Conservative parallel-discrete-event engine: N ShardSchedulers advanced
/// in barrier-synchronized windows.
///
/// Protocol (conservative barrier-window, lookahead L = the minimum modeled
/// cross-shard latency declared via declareCrossLatency):
///   1. M = min over lanes of the earliest pending cycle. Quiescent if none.
///   2. Window W = min(M + L, until + 1). Every lane with work before W is
///      *active* this round.
///   3. Active lanes drain their private wheels up to (excluding) W
///      concurrently. Cross-shard pushes during the window must carry a
///      delay >= L, so they target cycles >= M + L >= W — strictly in every
///      peer's future. That is what makes concurrent windows race-free.
///   4. Barrier; the coordinator drains the channels into the destination
///      wheels in a deterministic merge order (source lane ascending, FIFO
///      within a channel), checks stops/errors, and opens the next window.
///
/// Rounds with a single active lane (the common case for fused partitions,
/// where coupled shells share one lane) execute inline on the coordinator
/// thread — no wakeups, no synchronization, serial-kernel speed. The worker
/// team spawns lazily on the first round with more than one active lane;
/// note that an *undeclared* lookahead does not prevent this: infinite L
/// makes W = until + 1, so multiple populated lanes all join one wide round
/// and run concurrently (safe because they are then fully independent —
/// cross-lane injection without a declared lookahead throws). The team is
/// avoided only when at most one lane is populated.
///
/// Determinism: each lane's execution order is the serial order of its own
/// wheel; the channel merge is a fixed function of (source lane, push
/// order); thread interleaving can only change *when* wall-clock work
/// happens, never *what order* events execute in. Identical inputs produce
/// identical cycle/event counts for any shard count and any interleaving,
/// provided same-cycle cross-lane arrivals are not order-sensitive — the
/// partitioner's fusion rule guarantees that by construction for instances
/// (coupled shells share a lane), and kernel-level tests exercise it with
/// scheduling jitter.
class ShardEngine {
 public:
  static constexpr Cycle kForever = std::numeric_limits<Cycle>::max();
  /// Reserved per-channel capacity; beyond it pushes grow + count overflows.
  static constexpr std::size_t kChannelBound = 4096;

  ShardEngine(Simulator& sim, std::uint32_t shards);
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;
  ~ShardEngine();

  [[nodiscard]] std::uint32_t shardCount() const {
    return static_cast<std::uint32_t>(lanes_.size());
  }

  // --- execution context --------------------------------------------------

  /// Lane currently executing on this thread, null outside window execution
  /// (or when this thread is running a different engine's lane).
  [[nodiscard]] ShardScheduler* executingLane() const;

  [[nodiscard]] Cycle now() const;
  [[nodiscard]] ShardId currentShard() const;

  // --- scheduling ---------------------------------------------------------

  /// Schedules onto the executing lane (or shard 0 outside execution).
  void schedule(Cycle delay, Event ev);
  void scheduleAt(Cycle at, Event ev);

  /// Schedules onto an explicit shard. Outside execution this is a direct
  /// push; from inside a window targeting a *different* lane it is a
  /// cross-shard injection: the delay must be >= the declared lookahead
  /// (std::logic_error otherwise) and the event travels through the bounded
  /// channel, delivered at the next barrier.
  void scheduleOn(ShardId shard, Cycle delay, Event ev);

  /// Declares a modeled cross-shard latency; the engine keeps the minimum
  /// as its conservative lookahead. Without any declaration, lanes are
  /// assumed fully independent (infinite lookahead) and cross-shard
  /// injection mid-run is an error.
  void declareCrossLatency(Cycle latency);
  [[nodiscard]] Cycle lookahead() const { return lookahead_; }

  /// Registers a root process on a lane (kAutoShard: executing lane, else
  /// shard 0). Spawning onto an explicit *remote* lane from inside a window
  /// is rejected — it would bypass the lookahead discipline.
  void spawn(Task<void>::handle_type handle, std::string name, ShardId shard);

  /// Called (via the Simulator) when a root process completes on the
  /// executing lane: decrements the lane's live count and latches the first
  /// error, mirroring the serial kernel's notifyRootDone.
  void notifyRootDone(std::exception_ptr exception);

  // --- run control ---------------------------------------------------------

  Cycle run(Cycle until);

  /// Lane-local stop: the executing lane breaks immediately; sibling lanes
  /// finish the current window (bounded by lookahead), then run() returns
  /// the stopping lane's cycle. With a fused partition every round is
  /// single-active, so this degenerates to the serial semantics exactly.
  void stop();

  [[nodiscard]] bool quiescent() const;
  [[nodiscard]] std::size_t liveProcesses() const;
  [[nodiscard]] std::uint64_t eventsDispatched() const;
  [[nodiscard]] Cycle globalNow() const { return global_now_; }

  void destroyProcesses();

  /// Randomized wall-clock perturbation of lane execution (sleep/yield
  /// jitter) for determinism stress tests. 0 disables (the default).
  void setJitter(std::uint64_t seed) { jitter_seed_ = seed; }

  [[nodiscard]] ShardStats snapshotStats() const;

 private:
  friend class Simulator;

  [[nodiscard]] ShardScheduler& laneFor(ShardId shard);
  [[nodiscard]] ShardScheduler& defaultLane() { return *lanes_[0]; }
  [[nodiscard]] ShardChannel& channel(ShardId src, ShardId dst) {
    return channels_[static_cast<std::size_t>(src) * lanes_.size() + dst];
  }

  /// Executes one lane's window [lane wheel head, W). Sets the thread-local
  /// execution context for the duration.
  void runLane(ShardScheduler& lane, Cycle W);
  void runQueuedLanes(Cycle W);
  void drainChannels();
  void ensureTeam();
  void teamMain();

  Simulator& sim_;
  std::vector<std::unique_ptr<ShardScheduler>> lanes_;
  std::vector<ShardChannel> channels_;  // indexed [src * n + dst]
  Cycle lookahead_ = kForever;
  Cycle global_now_ = 0;
  std::atomic<bool> stop_flag_{false};
  std::uint64_t jitter_seed_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t parallel_rounds_ = 0;
  std::uint64_t cross_events_ = 0;

  // Round-barrier team (spawned lazily on the first multi-active round, so
  // fused partitions never start a thread).
  std::vector<std::thread> team_;
  std::mutex m_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::vector<ShardScheduler*> round_work_;
  std::atomic<std::size_t> next_work_{0};
  std::size_t done_count_ = 0;
  std::uint64_t round_gen_ = 0;
  Cycle round_window_ = 0;
  bool shutdown_ = false;
};

}  // namespace eclipse::sim
