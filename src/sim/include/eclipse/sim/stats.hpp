#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "eclipse/sim/types.hpp"

namespace eclipse::sim {

/// Streaming accumulator for scalar measurements (min/max/mean/variance).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum_sq_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : sum_ / static_cast<double>(n_); }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    return std::max(0.0, sum_sq_ / static_cast<double>(n_) - m * m);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time series of (cycle, value) samples — the raw material for the
/// buffer-filling and utilization plots of Figures 9 and 10.
class TimeSeries {
 public:
  TimeSeries() = default;
  explicit TimeSeries(std::string name) : name_(std::move(name)) {}

  void sample(Cycle at, double value) { points_.emplace_back(at, value); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::pair<Cycle, double>>& points() const { return points_; }
  [[nodiscard]] bool empty() const { return points_.empty(); }
  [[nodiscard]] std::size_t size() const { return points_.size(); }

  [[nodiscard]] double maxValue() const {
    double m = 0.0;
    for (const auto& [c, v] : points_) m = std::max(m, v);
    return m;
  }

  /// Mean value over all samples (unweighted).
  [[nodiscard]] double meanValue() const {
    if (points_.empty()) return 0.0;
    double s = 0.0;
    for (const auto& [c, v] : points_) s += v;
    return s / static_cast<double>(points_.size());
  }

  /// Mean of samples whose cycle lies in [from, to).
  [[nodiscard]] double meanValueIn(Cycle from, Cycle to) const {
    double s = 0.0;
    std::size_t n = 0;
    for (const auto& [c, v] : points_) {
      if (c >= from && c < to) {
        s += v;
        ++n;
      }
    }
    return n == 0 ? 0.0 : s / static_cast<double>(n);
  }

  void clear() { points_.clear(); }

 private:
  std::string name_;
  std::vector<std::pair<Cycle, double>> points_;
};

/// Utilization tracker: accumulates busy cycles against elapsed cycles.
class Utilization {
 public:
  void addBusy(Cycle cycles) { busy_ += cycles; }

  [[nodiscard]] Cycle busyCycles() const { return busy_; }

  /// Fraction of `elapsed` spent busy, clamped to [0, 1].
  [[nodiscard]] double fraction(Cycle elapsed) const {
    if (elapsed == 0) return 0.0;
    return std::min(1.0, static_cast<double>(busy_) / static_cast<double>(elapsed));
  }

  void reset() { busy_ = 0; }

 private:
  Cycle busy_ = 0;
};

}  // namespace eclipse::sim
