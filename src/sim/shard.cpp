#include "eclipse/sim/shard.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "eclipse/sim/simulator.hpp"

namespace eclipse::sim {

namespace {

/// Thread-local execution context: which engine/lane this thread is
/// currently driving. Set only for the duration of runLane(), so a farm
/// worker thread that runs several simulators in sequence never leaks a
/// stale lane between them.
struct ExecContext {
  const ShardEngine* engine = nullptr;
  ShardScheduler* lane = nullptr;
};

thread_local ExecContext tls_exec;

constexpr Cycle satAdd(Cycle a, Cycle b) {
  return a > ShardEngine::kForever - b ? ShardEngine::kForever : a + b;
}

/// xorshift64* — tiny deterministic PRNG for the jitter hook.
struct JitterRng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1DULL;
  }
};

}  // namespace

void ShardScheduler::reclaimFinishedRoots() {
  std::erase_if(roots, [](Root& r) {
    if (r.handle && r.handle.done()) {
      r.handle.destroy();
      return true;
    }
    return false;
  });
}

void ShardScheduler::destroyRoots() {
  for (auto& root : roots) {
    if (root.handle) {
      root.handle.destroy();
      root.handle = nullptr;
    }
  }
  roots.clear();
  live = 0;
}

ShardEngine::ShardEngine(Simulator& sim, std::uint32_t shards) : sim_(sim) {
  if (shards < 2) throw std::logic_error("ShardEngine requires >= 2 shards");
  lanes_.reserve(shards);
  for (std::uint32_t i = 0; i < shards; ++i) {
    lanes_.push_back(std::make_unique<ShardScheduler>());
    lanes_.back()->id = i;
  }
  channels_.resize(static_cast<std::size_t>(shards) * shards);
}

ShardEngine::~ShardEngine() {
  {
    std::lock_guard lk(m_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : team_) t.join();
  destroyProcesses();
}

ShardScheduler* ShardEngine::executingLane() const {
  return tls_exec.engine == this ? tls_exec.lane : nullptr;
}

Cycle ShardEngine::now() const {
  if (ShardScheduler* l = executingLane()) return l->now;
  return global_now_;
}

ShardId ShardEngine::currentShard() const {
  if (ShardScheduler* l = executingLane()) return l->id;
  return 0;
}

ShardScheduler& ShardEngine::laneFor(ShardId shard) {
  if (shard >= lanes_.size()) throw std::out_of_range("shard id out of range");
  return *lanes_[shard];
}

void ShardEngine::schedule(Cycle delay, Event ev) {
  if (ShardScheduler* l = executingLane()) {
    l->wheel.push(satAdd(l->now, delay), std::move(ev));
  } else {
    defaultLane().wheel.push(satAdd(global_now_, delay), std::move(ev));
  }
}

void ShardEngine::scheduleAt(Cycle at, Event ev) {
  if (ShardScheduler* l = executingLane()) {
    l->wheel.push(at < l->now ? l->now : at, std::move(ev));
  } else {
    defaultLane().wheel.push(at < global_now_ ? global_now_ : at, std::move(ev));
  }
}

void ShardEngine::scheduleOn(ShardId shard, Cycle delay, Event ev) {
  ShardScheduler& dst = laneFor(shard);
  ShardScheduler* src = executingLane();
  if (src == nullptr) {
    // Setup / between-runs context: direct push, no window is open.
    dst.wheel.push(satAdd(global_now_, delay), std::move(ev));
    return;
  }
  if (src->id == shard) {
    src->wheel.push(satAdd(src->now, delay), std::move(ev));
    return;
  }
  // Cross-shard injection mid-window: the conservative contract requires the
  // target cycle to be at or beyond every peer's window end, which holds iff
  // the modeled delay is at least the declared lookahead.
  if (lookahead_ == kForever) {
    throw std::logic_error(
        "cross-shard event scheduled with no declared lookahead (declareCrossLatency)");
  }
  if (delay < lookahead_) {
    throw std::logic_error("cross-shard event delay below conservative lookahead");
  }
  ShardChannel& ch = channel(src->id, shard);
  if (ch.buf.capacity() == 0) ch.buf.reserve(kChannelBound);
  if (ch.buf.size() >= kChannelBound) ++ch.overflows;
  ch.buf.push_back(detail::CrossEvent{satAdd(src->now, delay), std::move(ev)});
  ++ch.pushed;
  ch.high_water = std::max<std::uint64_t>(ch.high_water, ch.buf.size());
}

void ShardEngine::declareCrossLatency(Cycle latency) {
  if (latency == 0) throw std::logic_error("cross-shard lookahead must be >= 1 cycle");
  lookahead_ = std::min(lookahead_, latency);
}

void ShardEngine::spawn(Task<void>::handle_type handle, std::string name, ShardId shard) {
  ShardScheduler* lane;
  if (shard == kAutoShard) {
    lane = executingLane();
    if (lane == nullptr) lane = &defaultLane();
  } else {
    // Validation failures destroy the never-started frame: the caller has
    // already released ownership, so throwing without destroying would
    // leak the coroutine.
    if (shard >= lanes_.size()) {
      handle.destroy();
      throw std::out_of_range("shard id out of range");
    }
    lane = lanes_[shard].get();
    ShardScheduler* src = executingLane();
    if (src != nullptr && src->id != shard) {
      handle.destroy();
      throw std::logic_error("explicit remote-shard spawn from inside a window");
    }
  }
  if (lane->roots.size() >= 1024) lane->reclaimFinishedRoots();
  lane->roots.push_back(ShardScheduler::Root{std::move(name), handle});
  ++lane->live;
  const Cycle at = executingLane() == lane ? lane->now : global_now_;
  lane->wheel.push(at, Event(handle));
}

void ShardEngine::runLane(ShardScheduler& lane, Cycle W) {
  tls_exec = ExecContext{this, &lane};
  JitterRng rng{jitter_seed_ == 0
                    ? 0
                    : (jitter_seed_ ^ (0x9E3779B97F4A7C15ULL * (lane.id + 1)) ^ round_gen_)};
  while (!lane.wheel.empty() && !lane.stop_requested) {
    if (lane.wheel.nextCycle() >= W) break;
    Cycle at = 0;
    Event ev = lane.wheel.pop(&at);
    lane.now = at;
    ++lane.events;
    if (jitter_seed_ != 0 && (rng.next() & 7) == 0) {
      // Perturb wall-clock interleaving without touching simulated time:
      // determinism tests assert results are invariant under this.
      if ((rng.next() & 3) == 0) {
        std::this_thread::sleep_for(std::chrono::nanoseconds(rng.next() % 20000));
      } else {
        std::this_thread::yield();
      }
    }
    try {
      ev();
    } catch (...) {
      if (!lane.error) {
        lane.error = std::current_exception();
        lane.error_cycle = at;
      }
      lane.stop_requested = true;
      stop_flag_.store(true, std::memory_order_relaxed);
      break;
    }
    if (lane.error) break;  // a root process failed; latched via notifyRootDone
  }
  tls_exec = ExecContext{};
}

void ShardEngine::runQueuedLanes(Cycle W) {
  for (;;) {
    const std::size_t i = next_work_.fetch_add(1, std::memory_order_relaxed);
    if (i >= round_work_.size()) return;
    runLane(*round_work_[i], W);
  }
}

void ShardEngine::ensureTeam() {
  if (!team_.empty()) return;
  team_.reserve(lanes_.size() - 1);
  for (std::size_t i = 1; i < lanes_.size(); ++i) {
    team_.emplace_back([this] { teamMain(); });
  }
}

void ShardEngine::teamMain() {
  std::uint64_t seen = 0;
  for (;;) {
    Cycle W;
    {
      std::unique_lock lk(m_);
      cv_work_.wait(lk, [&] { return shutdown_ || round_gen_ != seen; });
      if (shutdown_) return;
      seen = round_gen_;
      W = round_window_;
    }
    runQueuedLanes(W);
    {
      std::lock_guard lk(m_);
      ++done_count_;
    }
    cv_done_.notify_one();
  }
}

void ShardEngine::drainChannels() {
  // Deterministic merge: destination lanes ascending, source lanes ascending
  // within each destination, FIFO within each channel. Pushed after the
  // destination's own window pushes, so same-cycle ordering is a fixed
  // function of the partition, never of thread timing.
  const std::size_t n = lanes_.size();
  for (std::size_t dst = 0; dst < n; ++dst) {
    ShardScheduler& lane = *lanes_[dst];
    for (std::size_t src = 0; src < n; ++src) {
      if (src == dst) continue;
      ShardChannel& ch = channel(static_cast<ShardId>(src), static_cast<ShardId>(dst));
      if (ch.buf.empty()) continue;
      cross_events_ += ch.buf.size();
      for (auto& ce : ch.buf) {
        lane.wheel.push(ce.at, std::move(ce.ev));
      }
      ch.buf.clear();
    }
  }
}

Cycle ShardEngine::run(Cycle until) {
  stop_flag_.store(false, std::memory_order_relaxed);
  for (auto& l : lanes_) l->stop_requested = false;
  for (;;) {
    // 1. Global horizon: earliest pending cycle across all lanes.
    Cycle M = kForever;
    for (auto& l : lanes_) {
      if (!l->wheel.empty()) M = std::min(M, l->wheel.nextCycle());
    }
    if (M == kForever) {
      for (auto& l : lanes_) global_now_ = std::max(global_now_, l->now);
      return global_now_;  // drained
    }
    if (M > until) {
      global_now_ = until;
      return until;
    }
    // 2. Conservative window: [M, W). Infinite lookahead (no declared cross
    // links) means the lanes are independent and may run to `until`.
    const Cycle W = std::min(satAdd(M, lookahead_), satAdd(until, 1));
    round_work_.clear();
    for (auto& l : lanes_) {
      if (!l->wheel.empty() && l->wheel.nextCycle() < W) round_work_.push_back(l.get());
    }
    ++rounds_;
    // 3. Execute the window. Single-active rounds (fused partitions, or
    // phases where only one lane has near-term work) run inline; the team
    // never wakes, which keeps the serial-equivalent path at serial speed.
    if (round_work_.size() == 1) {
      runLane(*round_work_[0], W);
    } else {
      ++parallel_rounds_;
      ensureTeam();
      // The whole round descriptor (work cursor, window, done counter,
      // generation) is published atomically under the mutex: a worker that
      // loops around early must either see the complete new round or keep
      // waiting — never a new generation with a stale cursor.
      {
        std::lock_guard lk(m_);
        done_count_ = 0;
        round_window_ = W;
        next_work_.store(0, std::memory_order_relaxed);
        ++round_gen_;
      }
      cv_work_.notify_all();
      runQueuedLanes(W);
      std::unique_lock lk(m_);
      cv_done_.wait(lk, [&] { return done_count_ == team_.size(); });
    }
    // 4. Barrier passed: merge cross-shard traffic, then surface errors and
    // stops in a deterministic order.
    drainChannels();
    ShardScheduler* failed = nullptr;
    for (auto& l : lanes_) {
      if (!l->error) continue;
      if (failed == nullptr || l->error_cycle < failed->error_cycle ||
          (l->error_cycle == failed->error_cycle && l->id < failed->id)) {
        failed = l.get();
      }
    }
    if (failed != nullptr) {
      std::exception_ptr err = std::exchange(failed->error, nullptr);
      for (auto& l : lanes_) l->error = nullptr;
      global_now_ = std::max(global_now_, failed->error_cycle);
      std::rethrow_exception(err);
    }
    if (stop_flag_.load(std::memory_order_relaxed)) {
      Cycle at = kForever;
      for (auto& l : lanes_) {
        if (l->stop_requested) at = std::min(at, l->now);
      }
      if (at == kForever) at = M;  // stop() from outside any lane
      global_now_ = std::max(global_now_, at);
      return global_now_;
    }
  }
}

void ShardEngine::notifyRootDone(std::exception_ptr exception) {
  ShardScheduler* l = executingLane();
  if (l == nullptr) return;  // frames only complete while their lane executes
  if (l->live > 0) --l->live;
  if (exception && !l->error) {
    l->error = exception;
    l->error_cycle = l->now;
    l->stop_requested = true;
    stop_flag_.store(true, std::memory_order_relaxed);
  }
}

void ShardEngine::stop() {
  if (ShardScheduler* l = executingLane()) l->stop_requested = true;
  stop_flag_.store(true, std::memory_order_relaxed);
}

bool ShardEngine::quiescent() const {
  for (const auto& l : lanes_) {
    if (!l->wheel.empty()) return false;
  }
  for (const auto& ch : channels_) {
    if (!ch.buf.empty()) return false;
  }
  return true;
}

std::size_t ShardEngine::liveProcesses() const {
  std::size_t n = 0;
  for (const auto& l : lanes_) n += l->live;
  return n;
}

std::uint64_t ShardEngine::eventsDispatched() const {
  std::uint64_t n = 0;
  for (const auto& l : lanes_) n += l->events;
  return n;
}

void ShardEngine::destroyProcesses() {
  // Channels and wheels may hold events capturing coroutine handles, so
  // both are dropped before any frame is destroyed.
  for (auto& ch : channels_) ch.buf.clear();
  for (auto& l : lanes_) l->wheel.clear();
  for (auto& l : lanes_) l->destroyRoots();
}

ShardStats ShardEngine::snapshotStats() const {
  ShardStats s;
  s.rounds = rounds_;
  s.parallel_rounds = parallel_rounds_;
  s.cross_events = cross_events_;
  s.lookahead = lookahead_;
  for (const auto& ch : channels_) {
    s.channel_overflows += ch.overflows;
    s.channel_high_water = std::max(s.channel_high_water, ch.high_water);
  }
  s.lane_events.reserve(lanes_.size());
  s.lane_live.reserve(lanes_.size());
  for (const auto& l : lanes_) {
    s.lane_events.push_back(l->events);
    s.lane_live.push_back(l->live);
  }
  return s;
}

}  // namespace eclipse::sim
