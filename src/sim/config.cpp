#include "eclipse/sim/config.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace eclipse::sim {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front())) != 0) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back())) != 0) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

Config Config::fromString(std::string_view text) {
  Config cfg;
  std::string section;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments starting with '#' or ';'.
    if (auto hash = line.find_first_of("#;"); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw std::runtime_error("config: malformed section header at line " + std::to_string(line_no));
      }
      section = std::string(trim(line.substr(1, line.size() - 2)));
      continue;
    }

    std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("config: missing '=' at line " + std::to_string(line_no));
    }
    std::string key(trim(line.substr(0, eq)));
    std::string value(trim(line.substr(eq + 1)));
    if (key.empty()) {
      throw std::runtime_error("config: empty key at line " + std::to_string(line_no));
    }
    if (!section.empty()) key = section + "." + key;
    cfg.values_[key] = value;
  }
  return cfg;
}

Config Config::fromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return fromString(ss.str());
}

void Config::set(const std::string& key, std::string value) { values_[key] = std::move(value); }
void Config::set(const std::string& key, std::int64_t value) { values_[key] = std::to_string(value); }
void Config::set(const std::string& key, double value) { values_[key] = std::to_string(value); }
void Config::set(const std::string& key, bool value) { values_[key] = value ? "true" : "false"; }

bool Config::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Config::getString(const std::string& key, std::string fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? std::move(fallback) : it->second;
}

std::int64_t Config::getInt(const std::string& key, std::int64_t fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  std::int64_t out = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  if (ec != std::errc{} || ptr != s.data() + s.size()) {
    throw std::runtime_error("config: key '" + key + "' is not an integer: " + s);
  }
  return out;
}

double Config::getDouble(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  try {
    std::size_t consumed = 0;
    double out = std::stod(it->second, &consumed);
    if (consumed != it->second.size()) throw std::invalid_argument("trailing");
    return out;
  } catch (const std::exception&) {
    throw std::runtime_error("config: key '" + key + "' is not a number: " + it->second);
  }
}

bool Config::getBool(const std::string& key, bool fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  const std::string& s = it->second;
  if (s == "true" || s == "1" || s == "yes" || s == "on") return true;
  if (s == "false" || s == "0" || s == "no" || s == "off") return false;
  throw std::runtime_error("config: key '" + key + "' is not a boolean: " + s);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [k, v] : values_) out.push_back(k);
  return out;
}

std::string Config::toString() const {
  std::ostringstream ss;
  for (const auto& [k, v] : values_) ss << k << " = " << v << "\n";
  return ss.str();
}

void Config::merge(const Config& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

}  // namespace eclipse::sim
